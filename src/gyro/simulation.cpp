#include <cstring>
#include "gyro/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "fft/fft.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace xg::gyro {

namespace {

/// Deterministic, decomposition-independent initial value for one global
/// (iv, ic, it) element.
cplx init_value(std::uint64_t seed, int iv, int ic, int it, double amp) {
  std::uint64_t s = Hasher().u64(seed).i64(iv).i64(ic).i64(it).digest();
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  const double re = static_cast<double>(a >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  const double im = static_cast<double>(b >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return amp * cplx(re, im);
}

/// Order-independent per-element hash contribution.
std::uint64_t element_hash(int iv, int ic, int it, cplx v) {
  std::uint64_t bits_re, bits_im;
  double re = v.real() == 0.0 ? 0.0 : v.real();
  double im = v.imag() == 0.0 ? 0.0 : v.imag();
  std::memcpy(&bits_re, &re, 8);
  std::memcpy(&bits_im, &im, 8);
  std::uint64_t s = Hasher().i64(iv).i64(ic).i64(it).digest() ^ bits_re ^
                    (bits_im << 32 | bits_im >> 32);
  return splitmix64(s);
}

}  // namespace

Simulation::Simulation(Input input, Decomposition decomp, CommLayout comms,
                       mpi::Proc& proc, Mode mode)
    : input_(std::move(input)), decomp_(decomp), comms_(std::move(comms)),
      proc_(&proc), mode_(mode), geometry_(input_) {
  input_.validate();
  decomp_.validate(input_, comms_.n_sims_sharing);
  XG_REQUIRE(comms_.sim.size() == decomp_.nranks(),
             "Simulation: sim communicator size != pv*pt");
  XG_REQUIRE(comms_.nv.size() == decomp_.pv,
             "Simulation: nv communicator size != pv");
  XG_REQUIRE(comms_.t.size() == decomp_.pt,
             "Simulation: t communicator size != pt");
  XG_REQUIRE(comms_.coll.size() == decomp_.pv * comms_.n_sims_sharing,
             "Simulation: coll communicator size != k*pv");
  vgrid_ = std::make_unique<vgrid::VelocityGrid>(input_.make_velocity_grid());

  coll_transpose_ = std::make_unique<tensor::EnsembleTransposer<cplx>>(
      comms_.n_sims_sharing, decomp_.pv, input_.nc(), input_.nv(), nt_loc());
  if (input_.nonlinear) {
    nl_transpose_ = std::make_unique<tensor::EnsembleTransposer<cplx>>(
        1, decomp_.pt, input_.nc(), input_.nt(), nv_loc());
  }

  iv_global_.resize(static_cast<size_t>(nv_loc()));
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    iv_global_[ivl] = comms_.nv.rank() * nv_loc() + ivl;
  }
}

int Simulation::it_global(int it_loc) const {
  return comms_.t.rank() * nt_loc() + it_loc;
}

int Simulation::global_ic_of_coll_cell(int a) const {
  return comms_.coll.rank() * nc_loc_coll() + a;
}

void Simulation::initialize() {
  proc_->set_phase("init");
  mpi::ScopedSpan span(*proc_, "initialize");

  // Geometry / gyroaverage tables (built in device memory).
  proc_->kernel(static_cast<double>(state_elems()) *
                compute_model_.init_table_flops_per_elem);
  if (mode_ == Mode::kReal) {
    h_ = tensor::Tensor3Z(nv_loc(), input_.nc(), nt_loc());
    acc_ = h_;
    stage_ = h_;
    k_ = h_;
    if (input_.nonlinear) {
      nl_ = h_;
      nl_str_perm_ = tensor::Tensor3Z(nt_loc(), input_.nc(), nv_loc());
      nl_layout_ = nl_transpose_->make_coll_tensors();
      phi_full_t_.resize(static_cast<size_t>(input_.nc()) * input_.nt());
      const size_t nt = static_cast<size_t>(input_.nt());
      nl_plan_ = std::make_unique<fft::Plan>(nt);
      nl_a_.resize(nt);
      nl_b_.resize(nt);
      nl_c_.resize(nt);
      nl_d_.resize(nt);
      nl_gather_.resize(static_cast<size_t>(input_.nc()) * nt);
    }
    gyro_j_ = tensor::Tensor3<double>(nv_loc(), input_.nc(), nt_loc());
    const size_t nfield = static_cast<size_t>(input_.nc()) * nt_loc();
    field_stack_.assign(nfield * input_.n_field, cplx{});
    u_.assign(nfield, cplx{});
    denom_.assign(nfield, 0.0);
    unorm_.assign(nfield, 0.0);
    build_tables();
  } else {
    // Same collective (and host staging) as the real path's upwind-norm
    // reduction in build_tables.
    proc_->stage_for_comm(static_cast<std::uint64_t>(input_.nc()) * nt_loc() *
                          sizeof(double));
    comms_.nv.allreduce_virtual(
        static_cast<std::uint64_t>(input_.nc()) * nt_loc() * sizeof(double));
  }

  build_cmat();

  if (mode_ == Mode::kReal) apply_initial_condition();

  coll_states_.clear();
  if (mode_ == Mode::kReal) coll_states_ = coll_transpose_->make_coll_tensors();
  coll_scratch_.assign(
      static_cast<size_t>(input_.nv()) * 2 * comms_.n_sims_sharing, cplx{});

  // Enter the step loop synchronized, as production solvers do before the
  // timed loop. The memoized cmat build charges differ per rank (each skips
  // the LU for its own duplicate-kperp2 cells), and without this barrier that
  // startup skew would be attributed to the first step's comm phase instead
  // of init. coll then sim is an exact global sync: every coll group spans
  // all sims sharing cmat, so each sim's max after the first barrier is the
  // ensemble max.
  comms_.coll.barrier();
  comms_.sim.barrier();
}

void Simulation::build_tables() {
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    const int iv = iv_global_[ivl];
    for (int ic = 0; ic < input_.nc(); ++ic) {
      for (int itl = 0; itl < nt_loc(); ++itl) {
        gyro_j_(ivl, ic, itl) =
            geometry_.gyroaverage(*vgrid_, iv, ic, it_global(itl));
      }
    }
  }
  // Moment weights depend only on the velocity point (and field slot), not
  // on the cell — build them once here instead of inside the per-(ic, itl)
  // loops of field_solve/upwind_solve. Products are grouped exactly as the
  // former inline expressions so the solves stay bit-identical.
  field_w_.assign(static_cast<size_t>(input_.n_field) * nv_loc(), 0.0);
  upwind_w_.assign(static_cast<size_t>(nv_loc()), 0.0);
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    const int iv = iv_global_[ivl];
    const double z = vgrid_->species(vgrid_->species_of(iv)).charge;
    upwind_w_[ivl] = vgrid_->weight(iv) * std::abs(vgrid_->v_parallel(iv));
    for (int f = 0; f < input_.n_field; ++f) {
      // Field moment weights: φ ← 1, A∥ ← v∥, B∥ ← e (EM stand-ins).
      const double mw = (f == 0)   ? 1.0
                        : (f == 1) ? vgrid_->v_parallel(iv)
                                   : vgrid_->energy(vgrid_->energy_of(iv));
      field_w_[static_cast<size_t>(f) * nv_loc() + ivl] =
          z * mw * vgrid_->weight(iv);
    }
  }
  for (int ic = 0; ic < input_.nc(); ++ic) {
    for (int itl = 0; itl < nt_loc(); ++itl) {
      const size_t idx = static_cast<size_t>(ic) * nt_loc() + itl;
      denom_[idx] = geometry_.field_denominator(ic, it_global(itl));
      double partial = 0.0;
      for (int ivl = 0; ivl < nv_loc(); ++ivl) {
        const double j = gyro_j_(ivl, ic, itl);
        partial += upwind_w_[ivl] * j * j;
      }
      unorm_[idx] = partial;
    }
  }
  // Complete the upwind normalization across the velocity communicator.
  proc_->stage_for_comm(unorm_.size() * sizeof(double));
  comms_.nv.allreduce_sum(std::span<double>(unorm_));
  for (auto& v : unorm_) v = std::max(v, 1e-12);
}

void Simulation::build_cmat() {
  const int nv = input_.nv();
  // cmat depends on the cell only through k_perp², and the spectral geometry
  // makes many cells degenerate (ky = 0 rows, ±kx symmetry). Memoize on the
  // k_perp² bit pattern: only the first cell of each equivalence class pays
  // the O(nv³) LU build; the rest copy its fp32 matrix bit-identically.
  std::unordered_map<std::uint64_t, int> built;  // kperp2 bits -> first cell
  std::vector<int> copy_from(static_cast<size_t>(n_coll_cells()), -1);
  std::vector<double> cell_kperp2(static_cast<size_t>(n_coll_cells()), 0.0);
  int n_unique = 0;
  for (int a = 0; a < nc_loc_coll(); ++a) {
    const int ic = global_ic_of_coll_cell(a);
    for (int itl = 0; itl < nt_loc(); ++itl) {
      const int cell = a * nt_loc() + itl;
      const double kperp2 = geometry_.kperp2(ic, it_global(itl));
      cell_kperp2[cell] = kperp2;
      std::uint64_t bits;
      std::memcpy(&bits, &kperp2, sizeof bits);
      const auto [slot, inserted] = built.emplace(bits, cell);
      if (inserted) {
        ++n_unique;
      } else {
        copy_from[cell] = slot->second;
      }
    }
  }
  // cmat is constructed on the host (LU factorizations for the unique cells
  // only) and uploaded to the device once — the one big H2D transfer of a
  // CGYRO run. The charge uses the same unique-cell count in both modes, so
  // real and model timings stay in lockstep.
  const double scattering_flops = 6.0 * static_cast<double>(nv) * nv * nv;
  proc_->compute(scattering_flops +
                 static_cast<double>(n_unique) *
                     collision::CmatRecipe::build_flops_per_cell(nv));
  proc_->stage_upload(static_cast<std::uint64_t>(nv) * nv * n_coll_cells() *
                      sizeof(float));
  if (mode_ == Mode::kModel) {
    cmat_ = std::make_unique<collision::CollisionTensor>(nv, 0);
    return;
  }
  collision::CmatRecipe recipe;
  recipe.params = input_.collision;
  recipe.dt = input_.dt;
  const la::MatrixD scattering =
      collision::build_scattering_operator(*vgrid_, recipe.params);
  cmat_ = std::make_unique<collision::CollisionTensor>(nv, n_coll_cells());
  for (int cell = 0; cell < n_coll_cells(); ++cell) {
    if (copy_from[cell] >= 0) {
      cmat_->copy_cell(cell, copy_from[cell]);
    } else {
      cmat_->set_cell(cell,
                      recipe.build_cell(*vgrid_, scattering, cell_kperp2[cell]));
    }
  }
}

void Simulation::apply_initial_condition() {
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    const int iv = iv_global_[ivl];
    for (int ic = 0; ic < input_.nc(); ++ic) {
      for (int itl = 0; itl < nt_loc(); ++itl) {
        h_(ivl, ic, itl) =
            init_value(input_.seed, iv, ic, it_global(itl), input_.amp0);
      }
    }
  }
}

void Simulation::field_solve(const tensor::Tensor3Z& h) {
  proc_->set_phase("str");
  const int nf = input_.n_field;
  proc_->kernel(static_cast<double>(state_elems()) * nf *
                compute_model_.field_partial_flops_per_elem);
  const size_t cells = static_cast<size_t>(input_.nc()) * nt_loc();
  if (mode_ == Mode::kReal) {
    for (int f = 0; f < nf; ++f) {
      cplx* slot = field_stack_.data() + static_cast<size_t>(f) * cells;
      const double* fw = field_w_.data() + static_cast<size_t>(f) * nv_loc();
      for (int ic = 0; ic < input_.nc(); ++ic) {
        for (int itl = 0; itl < nt_loc(); ++itl) {
          cplx acc{};
          for (int ivl = 0; ivl < nv_loc(); ++ivl) {
            acc += fw[ivl] * gyro_j_(ivl, ic, itl) * h(ivl, ic, itl);
          }
          slot[static_cast<size_t>(ic) * nt_loc() + itl] = acc;
        }
      }
    }
  }
  proc_->set_phase("str_comm");
  {
    mpi::ScopedSpan span(*proc_, "field.allreduce");
    proc_->stage_for_comm(field_bytes() * nf);
    if (mode_ == Mode::kReal) {
      comms_.nv.allreduce_sum(std::span<cplx>(field_stack_));
    } else {
      comms_.nv.allreduce_virtual(field_bytes() * nf);
    }
  }
  proc_->set_phase("str");
  if (mode_ == Mode::kReal) {
    for (size_t i = 0; i < cells; ++i) field_stack_[i] /= denom_[i];
  }
}

void Simulation::upwind_solve(const tensor::Tensor3Z& h) {
  proc_->set_phase("str");
  proc_->kernel(static_cast<double>(state_elems()) *
                compute_model_.field_partial_flops_per_elem);
  if (mode_ == Mode::kReal) {
    for (int ic = 0; ic < input_.nc(); ++ic) {
      for (int itl = 0; itl < nt_loc(); ++itl) {
        cplx acc{};
        for (int ivl = 0; ivl < nv_loc(); ++ivl) {
          acc += upwind_w_[ivl] * gyro_j_(ivl, ic, itl) * h(ivl, ic, itl);
        }
        u_[static_cast<size_t>(ic) * nt_loc() + itl] = acc;
      }
    }
  }
  proc_->set_phase("str_comm");
  {
    mpi::ScopedSpan span(*proc_, "upwind.allreduce");
    proc_->stage_for_comm(field_bytes());
    if (mode_ == Mode::kReal) {
      comms_.nv.allreduce_sum(std::span<cplx>(u_));
    } else {
      comms_.nv.allreduce_virtual(field_bytes());
    }
  }
  proc_->set_phase("str");
  if (mode_ == Mode::kReal) {
    for (size_t i = 0; i < u_.size(); ++i) u_[i] /= unorm_[i];
  }
}

void Simulation::nonlinear_term(const tensor::Tensor3Z& h) {
  const int nt = input_.nt();
  const int nc_pt = input_.nc() / decomp_.pt;

  // Gather the full toroidal extent of φ across the t communicator.
  proc_->set_phase("nl_comm");
  const std::uint64_t phi_bytes = field_bytes();
  const std::uint64_t state_bytes = state_elems() * sizeof(cplx);
  {
    mpi::ScopedSpan span(*proc_, "nl.gather_phi");
    proc_->stage_for_comm(phi_bytes);
    if (mode_ == Mode::kReal) {
      comms_.t.allgather(
          std::span<const cplx>(field_stack_.data(),
                                static_cast<size_t>(input_.nc()) * nt_loc()),
          std::span<cplx>(nl_gather_));
      // nl_gather_ is blocked by source rank: block q holds φ(ic, q·nt_loc+itl).
      for (int q = 0; q < decomp_.pt; ++q) {
        const cplx* block =
            nl_gather_.data() + static_cast<size_t>(q) * input_.nc() * nt_loc();
        for (int ic = 0; ic < input_.nc(); ++ic) {
          for (int itl = 0; itl < nt_loc(); ++itl) {
            phi_full_t_[static_cast<size_t>(ic) * nt + q * nt_loc() + itl] =
                block[static_cast<size_t>(ic) * nt_loc() + itl];
          }
        }
      }
    } else {
      comms_.t.allgather_virtual(phi_bytes);
    }
  }

  // Permute h(ivl, ic, itl) → (itl, ic, ivl) and transpose to the nl layout
  // (full toroidal dimension per rank).
  {
    mpi::ScopedSpan span(*proc_, "nl.transpose_to_nl");
    if (mode_ == Mode::kReal) {
      for (int ivl = 0; ivl < nv_loc(); ++ivl) {
        for (int ic = 0; ic < input_.nc(); ++ic) {
          for (int itl = 0; itl < nt_loc(); ++itl) {
            nl_str_perm_(itl, ic, ivl) = h(ivl, ic, itl);
          }
        }
      }
      proc_->stage_for_comm(state_bytes);
      nl_transpose_->to_coll(comms_.t, nl_str_perm_, nl_layout_);
    } else {
      proc_->stage_for_comm(state_bytes);
      nl_transpose_->to_coll_virtual(comms_.t);
    }
  }

  // Pseudo-spectral toroidal bracket, one circular convolution pair per
  // (configuration cell, velocity point).
  proc_->set_phase("nl");
  {
    mpi::ScopedSpan span(*proc_, "nl.fft_bracket");
    proc_->kernel(static_cast<double>(state_elems()) *
                  (compute_model_.nl_flops_per_elem_base +
                   compute_model_.nl_fft_flops_per_log *
                       std::log2(static_cast<double>(std::max(2, nt)))));
    if (mode_ == Mode::kReal) {
      // Plan and line buffers are Simulation members (built in initialize());
      // this loop used to rebuild them on every RK stage.
      auto& a = nl_a_;
      auto& b = nl_b_;
      auto& c = nl_c_;
      auto& d = nl_d_;
      auto& hn = nl_layout_[0];
      for (int aa = 0; aa < nc_pt; ++aa) {
        const int ic = comms_.t.rank() * nc_pt + aa;
        for (int ivl = 0; ivl < nv_loc(); ++ivl) {
          for (int t = 0; t < nt; ++t) {
            const cplx iky(0.0, geometry_.ky(t));
            const cplx ikx(0.0, geometry_.kx(ic, t));
            const cplx ph = phi_full_t_[static_cast<size_t>(ic) * nt + t];
            const cplx hh = hn(aa, t, ivl);
            a[t] = iky * ph;
            b[t] = ikx * hh;
            c[t] = ikx * ph;
            d[t] = iky * hh;
          }
          nl_plan_->forward(a);
          nl_plan_->forward(b);
          nl_plan_->forward(c);
          nl_plan_->forward(d);
          for (int t = 0; t < nt; ++t) a[t] = a[t] * b[t] - c[t] * d[t];
          nl_plan_->inverse(a);
          for (int t = 0; t < nt; ++t) hn(aa, t, ivl) = a[t];
        }
      }
    }
  }

  // Back to the streaming layout.
  proc_->set_phase("nl_comm");
  {
    mpi::ScopedSpan span(*proc_, "nl.transpose_to_str");
    proc_->stage_for_comm(state_bytes);
    if (mode_ == Mode::kReal) {
      nl_transpose_->to_str(comms_.t, nl_layout_, nl_str_perm_);
      for (int ivl = 0; ivl < nv_loc(); ++ivl) {
        for (int ic = 0; ic < input_.nc(); ++ic) {
          for (int itl = 0; itl < nt_loc(); ++itl) {
            nl_(ivl, ic, itl) = nl_str_perm_(itl, ic, ivl);
          }
        }
      }
    } else {
      nl_transpose_->to_str_virtual(comms_.t);
    }
  }
  proc_->set_phase("str");
}

void Simulation::compute_rhs(const tensor::Tensor3Z& h, tensor::Tensor3Z& rhs) {
  proc_->set_phase("str");
  proc_->kernel(static_cast<double>(state_elems()) *
                compute_model_.rhs_flops_per_elem);
  if (mode_ != Mode::kReal) return;
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    const int iv = iv_global_[ivl];
    const int is = vgrid_->species_of(iv);
    const double e = vgrid_->energy(vgrid_->energy_of(iv));
    const double xi = vgrid_->xi(vgrid_->xi_of(iv));
    const double vpar = vgrid_->v_parallel(iv);
    const double drive_coef =
        input_.species[is].a_ln_n + input_.species[is].a_ln_t * (e - 1.5);
    for (int ic = 0; ic < input_.nc(); ++ic) {
      const double kpar = geometry_.kpar(ic);
      for (int itl = 0; itl < nt_loc(); ++itl) {
        const double ky = geometry_.ky(it_global(itl));
        const size_t fidx = static_cast<size_t>(ic) * nt_loc() + itl;
        const double omega =
            kpar * vpar + 0.4 * ky * e * (0.5 + 0.5 * xi * xi);
        const double j = gyro_j_(ivl, ic, itl);
        const cplx hval = h(ivl, ic, itl);
        cplx r = cplx(0.0, -omega) * hval +
                 cplx(0.0, ky * j * drive_coef) * field_stack_[fidx] -
                 input_.upwind * std::abs(kpar) *
                     (std::abs(vpar) * hval - j * u_[fidx]);
        if (input_.nonlinear) r += nl_(ivl, ic, itl);
        rhs(ivl, ic, itl) = r;
      }
    }
  }
}

void Simulation::rk4_step() {
  const double dt = input_.dt;
  auto stage_rhs = [&](const tensor::Tensor3Z& x, tensor::Tensor3Z& out) {
    field_solve(x);
    upwind_solve(x);
    if (input_.nonlinear) nonlinear_term(x);
    compute_rhs(x, out);
  };
  const bool real = (mode_ == Mode::kReal);
  auto axpy_into = [&](tensor::Tensor3Z& dst, const tensor::Tensor3Z& base,
                       const tensor::Tensor3Z& v, double coef) {
    if (!real) return;
    const auto b = base.data();
    const auto vv = v.data();
    auto dd = dst.data();
    for (size_t i = 0; i < dd.size(); ++i) dd[i] = b[i] + coef * vv[i];
  };
  auto accum = [&](tensor::Tensor3Z& dst, const tensor::Tensor3Z& v, double coef) {
    if (!real) return;
    const auto vv = v.data();
    auto dd = dst.data();
    for (size_t i = 0; i < dd.size(); ++i) dd[i] += coef * vv[i];
  };

  stage_rhs(h_, k_);                      // k1
  axpy_into(acc_, h_, k_, dt / 6.0);
  axpy_into(stage_, h_, k_, dt / 2.0);
  stage_rhs(stage_, k_);                  // k2
  accum(acc_, k_, dt / 3.0);
  axpy_into(stage_, h_, k_, dt / 2.0);
  stage_rhs(stage_, k_);                  // k3
  accum(acc_, k_, dt / 3.0);
  axpy_into(stage_, h_, k_, dt);
  stage_rhs(stage_, k_);                  // k4
  accum(acc_, k_, dt / 6.0);
  if (real) std::swap(h_, acc_);
}

void Simulation::apply_collisions_range(int a_lo, int a_hi) {
  const int nv = input_.nv();
  const int k = comms_.n_sims_sharing;
  // Gather the k shared simulations' (a, ·, itl) slices into one contiguous
  // nv×k panel and apply the cell matrix to all of them in a single batched
  // GEMM — the cell's cmat is streamed once instead of k times. Per-element
  // accumulation order matches the scalar apply, so values are bit-exact
  // with the one-vector-at-a-time path.
  const size_t panel = static_cast<size_t>(nv) * k;
  std::span<cplx> x(coll_scratch_.data(), panel);
  std::span<cplx> y(coll_scratch_.data() + panel, panel);
  for (int a = a_lo; a < a_hi; ++a) {
    for (int itl = 0; itl < nt_loc(); ++itl) {
      for (int s = 0; s < k; ++s) {
        auto& state = coll_states_[s];
        for (int iv = 0; iv < nv; ++iv) {
          x[static_cast<size_t>(iv) * k + s] = state(a, iv, itl);
        }
      }
      cmat_->apply_batch(a * nt_loc() + itl, x, y, k);
      for (int s = 0; s < k; ++s) {
        auto& state = coll_states_[s];
        for (int iv = 0; iv < nv; ++iv) {
          state(a, iv, itl) = y[static_cast<size_t>(iv) * k + s];
        }
      }
    }
  }
}

void Simulation::collision_step() {
  proc_->set_phase("coll_comm");
  const std::uint64_t state_bytes = state_elems() * sizeof(cplx);
  proc_->stage_for_comm(state_bytes);

  const int chunks = coll_transpose_->clamp_chunks(input_.coll_pipeline_chunks);
  const double nv2_bytes =
      static_cast<double>(input_.nv()) * input_.nv() * sizeof(float);
  // Cost shape of the batched kernel: flops scale with sim-cells (every
  // shared simulation is a distinct right-hand side), but the cmat panel is
  // streamed once per *distinct* cell — sharing raises arithmetic intensity
  // by k, so memory traffic is charged per cell, not per sim-cell.
  if (chunks > 1) {
    // Pipelined: per-chunk collision kernels run while later chunks of the
    // transpose are still in flight (CGYRO-style overlap).
    const int a_per_chunk = nc_loc_coll() / chunks;
    const double chunk_distinct = static_cast<double>(a_per_chunk) * nt_loc();
    const double chunk_cells = chunk_distinct * comms_.n_sims_sharing;
    auto work = [&](int c) {
      proc_->set_phase("coll");
      mpi::ScopedSpan span(*proc_, "coll.apply");
      proc_->kernel(chunk_cells * cmat_->apply_flops(),
                    chunk_distinct * nv2_bytes);
      if (mode_ == Mode::kReal) {
        apply_collisions_range(c * a_per_chunk, (c + 1) * a_per_chunk);
      }
      proc_->set_phase("coll_comm");
    };
    mpi::ScopedSpan span(*proc_, "coll.transpose_pipelined");
    if (mode_ == Mode::kReal) {
      coll_transpose_->to_coll_pipelined(comms_.coll, h_, coll_states_, chunks,
                                         work);
    } else {
      coll_transpose_->to_coll_pipelined_virtual(comms_.coll, chunks, work);
    }
  } else {
    {
      mpi::ScopedSpan span(*proc_, "coll.transpose_to_coll");
      if (mode_ == Mode::kReal) {
        coll_transpose_->to_coll(comms_.coll, h_, coll_states_);
      } else {
        coll_transpose_->to_coll_virtual(comms_.coll);
      }
    }
    proc_->set_phase("coll");
    mpi::ScopedSpan span(*proc_, "coll.apply");
    const double distinct = static_cast<double>(n_coll_cells());
    const double cells = distinct * comms_.n_sims_sharing;
    proc_->kernel(cells * cmat_->apply_flops(), distinct * nv2_bytes);
    if (mode_ == Mode::kReal) apply_collisions_range(0, nc_loc_coll());
  }

  proc_->set_phase("coll_comm");
  {
    mpi::ScopedSpan span(*proc_, "coll.transpose_to_str");
    proc_->stage_for_comm(state_bytes);
    if (mode_ == Mode::kReal) {
      coll_transpose_->to_str(comms_.coll, coll_states_, h_);
    } else {
      coll_transpose_->to_str_virtual(comms_.coll);
    }
  }
  proc_->set_phase("str");
}

void Simulation::step() {
  rk4_step();
  collision_step();
  ++steps_;
}

Diagnostics Simulation::advance_report_interval() {
  mpi::ScopedSpan span(*proc_, "report_interval");
  for (int s = 0; s < input_.n_steps_per_report; ++s) step();
  return diagnostics();
}

Diagnostics Simulation::diagnostics() {
  Diagnostics d;
  d.steps = steps_;
  d.time = steps_ * input_.dt;
  field_solve(h_);
  proc_->set_phase("report");
  if (mode_ == Mode::kReal) {
    // Count each (ic, it) cell once: φ is replicated across the nv comm.
    double sums[3] = {0.0, 0.0, 0.0};
    if (comms_.nv.rank() == 0) {
      for (int ic = 0; ic < input_.nc(); ++ic) {
        for (int itl = 0; itl < nt_loc(); ++itl) {
          const double p2 =
              std::norm(field_stack_[static_cast<size_t>(ic) * nt_loc() + itl]);
          sums[0] += p2;
          sums[1] += geometry_.ky(it_global(itl)) * p2;
        }
      }
    }
    // Free energy: every rank owns a disjoint slice of h.
    for (int ivl = 0; ivl < nv_loc(); ++ivl) {
      const double w = vgrid_->weight(iv_global_[ivl]);
      for (int ic = 0; ic < input_.nc(); ++ic) {
        for (int itl = 0; itl < nt_loc(); ++itl) {
          sums[2] += w * std::norm(h_(ivl, ic, itl));
        }
      }
    }
    comms_.sim.allreduce_sum(std::span<double>(sums, 3));
    d.phi_rms = std::sqrt(sums[0] / (static_cast<double>(input_.nc()) * input_.nt()));
    d.flux_proxy = sums[1];
    d.free_energy = sums[2];
  } else {
    comms_.sim.allreduce_virtual(3 * sizeof(double));
  }
  proc_->set_phase("str");
  return d;
}

std::vector<double> Simulation::phi_spectrum() {
  XG_REQUIRE(mode_ == Mode::kReal, "phi_spectrum requires real mode");
  field_solve(h_);
  proc_->set_phase("report");
  std::vector<double> spectrum(static_cast<size_t>(input_.nt()), 0.0);
  // φ is replicated across the nv communicator; count each cell once.
  if (comms_.nv.rank() == 0) {
    for (int ic = 0; ic < input_.nc(); ++ic) {
      for (int itl = 0; itl < nt_loc(); ++itl) {
        spectrum[it_global(itl)] +=
            std::norm(field_stack_[static_cast<size_t>(ic) * nt_loc() + itl]);
      }
    }
  }
  comms_.sim.allreduce_sum(std::span<double>(spectrum));
  proc_->set_phase("str");
  return spectrum;
}

std::uint64_t Simulation::state_hash() {
  XG_REQUIRE(mode_ == Mode::kReal, "state_hash requires real mode");
  std::uint64_t local = 0;
  for (int ivl = 0; ivl < nv_loc(); ++ivl) {
    const int iv = iv_global_[ivl];
    for (int ic = 0; ic < input_.nc(); ++ic) {
      for (int itl = 0; itl < nt_loc(); ++itl) {
        local += element_hash(iv, ic, it_global(itl), h_(ivl, ic, itl));
      }
    }
  }
  std::uint64_t buf[1] = {local};
  comms_.sim.allreduce(std::span<std::uint64_t>(buf, 1),
                       [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return buf[0];
}

cluster::MemoryInventory Simulation::memory_inventory() const {
  return memory_inventory(input_, decomp_, comms_.n_sims_sharing);
}

cluster::MemoryInventory Simulation::memory_inventory(const Input& input,
                                                      const Decomposition& d,
                                                      int k) {
  const double nv_loc = static_cast<double>(input.nv()) / d.pv;
  const double nt_loc = static_cast<double>(input.nt()) / d.pt;
  const double state = nv_loc * input.nc() * nt_loc * sizeof(cplx);
  const double field = static_cast<double>(input.nc()) * nt_loc;

  cluster::MemoryInventory inv;
  inv.add("h_state", state, "distribution function, str layout");
  inv.add("rk_workspace", 3 * state, "RK4 stage/accumulator buffers");
  inv.add("gyroavg_table", state / 2, "gyroaverage factors (fp64 real)");
  inv.add("fields", field * (16.0 * input.n_field + 16 + 8 + 8),
          "field stack, upwind, denominators");
  inv.add("transpose_staging", 2 * state, "AllToAll pack/unpack");
  inv.add("coll_state", state, "collision-layout state (all shared sims)");
  if (input.nonlinear) {
    inv.add("nl_workspace", 2 * state + field * input.nt() / nt_loc * 16,
            "bracket buffers + gathered phi");
  }
  const double cells =
      static_cast<double>(input.nc()) / (d.pv * k) * nt_loc;
  inv.add("cmat",
          static_cast<double>(input.nv()) * input.nv() * cells * sizeof(float),
          k > 1 ? "collisional constant tensor (ensemble-shared)"
                : "collisional constant tensor");
  inv.add("runtime_fixed", 64e6, "solver runtime, grids, comm buffers");
  return inv;
}

std::string format_timing(const mpi::RunResult& result,
                          const std::vector<std::string>& phases) {
  std::string out = strprintf("%-12s %12s %12s %12s\n", "phase", "comm_max",
                              "compute_max", "total_max");
  double tot_comm = 0, tot_compute = 0;
  for (const auto& phase : phases) {
    double comm = 0, compute = 0, total = 0;
    for (const auto& r : result.ranks) {
      const auto it = r.phases.find(phase);
      if (it == r.phases.end()) continue;
      comm = std::max(comm, it->second.comm_s);
      compute = std::max(compute, it->second.compute_s);
      total = std::max(total, it->second.comm_s + it->second.compute_s);
    }
    tot_comm += comm;
    tot_compute += compute;
    out += strprintf("%-12s %12.4f %12.4f %12.4f\n", phase.c_str(), comm,
                     compute, total);
  }
  out += strprintf("%-12s %12.4f %12.4f %12.4f\n", "SUM", tot_comm, tot_compute,
                   tot_comm + tot_compute);
  out += strprintf("%-12s %38.4f\n", "MAKESPAN", result.makespan_s);
  return out;
}

}  // namespace xg::gyro
