// The CGYRO-skeleton gyrokinetic solver.
//
// One Simulation object lives on each rank of a simulation's communicator
// and advances the distributed state h(nv_loc, nc, nt_loc) through the
// paper's three phases per timestep:
//
//   streaming  (str)  : RK4 stages; each stage solves the field equation and
//                       the upwind dissipation moment with AllReduces on the
//                       nv communicator — the communication the paper's
//                       Fig. 2 shows dominating CGYRO runs;
//   nonlinear  (nl)   : pseudo-spectral toroidal bracket; transpose over the
//                       t communicator (full nt needed);
//   collision  (coll) : transpose to (nc_loc, nv, nt_loc) over the coll
//                       communicator, apply the precomputed cmat per cell,
//                       transpose back. The coll communicator is the nv
//                       communicator in CGYRO and the ensemble-wide one in
//                       XGYRO; the Simulation code is identical either way.
//
// Two execution modes with the same schedule:
//   kReal  — real data on small grids (tests, examples);
//   kModel — virtual payloads + calibrated compute charges at paper scale
//            (benchmarks). Every collective call matches the real path
//            message-for-message.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/memory.hpp"
#include "collision/tensor.hpp"
#include "fft/fft.hpp"
#include "gyro/decomposition.hpp"
#include "gyro/geometry.hpp"
#include "gyro/input.hpp"
#include "simmpi/runtime.hpp"
#include "tensor/dist_transpose.hpp"
#include "tensor/tensor.hpp"

namespace xg::gyro {

using cplx = std::complex<double>;

enum class Mode { kReal, kModel };

/// Calibrated per-element FLOP constants for model mode. Values chosen so a
/// Frontier-like rank lands in the regime of CGYRO's published per-phase
/// times; the paper comparison depends on ratios, not these absolutes.
struct ComputeModel {
  double rhs_flops_per_elem = 80.0;          ///< one RK-stage RHS evaluation
  double field_partial_flops_per_elem = 16.0;///< moment partial sums (×2)
  double nl_flops_per_elem_base = 30.0;      ///< bracket, plus FFT term below
  double nl_fft_flops_per_log = 10.0;        ///< × log2(nt) per element
  double init_table_flops_per_elem = 40.0;   ///< gyroaverage tables etc.
};

struct Diagnostics {
  double time = 0.0;       ///< simulation time
  int steps = 0;           ///< timesteps taken
  double phi_rms = 0.0;    ///< RMS electrostatic potential
  double flux_proxy = 0.0; ///< Σ ky·|φ|² (quasilinear flux stand-in)
  /// Free energy W = Σ w(iv)·|h|² over the global state (the entropy-like
  /// functional whose decay under collisions is the discrete H-theorem).
  double free_energy = 0.0;
};

class Simulation {
 public:
  Simulation(Input input, Decomposition decomp, CommLayout comms,
             mpi::Proc& proc, Mode mode);

  /// Grids, geometry tables, cmat construction, initial condition.
  /// Collective over the simulation (and coll) communicators.
  void initialize();

  /// One full timestep: RK4 streaming(+nonlinear) then implicit collisions.
  void step();

  /// n_steps_per_report timesteps plus the reporting diagnostics.
  Diagnostics advance_report_interval();

  [[nodiscard]] int steps_taken() const { return steps_; }
  [[nodiscard]] const Input& input() const { return input_; }
  [[nodiscard]] const Decomposition& decomposition() const { return decomp_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  /// Diagnostics at the current state (collective over sim comm).
  [[nodiscard]] Diagnostics diagnostics();

  /// |φ|² summed over configuration, per toroidal mode (size nt) — the
  /// fluctuation spectrum CGYRO reports in out.cgyro.ky_flux. Real mode;
  /// collective over the sim communicator.
  [[nodiscard]] std::vector<double> phi_spectrum();

  /// Order-independent hash of the global state; equal across different
  /// decompositions of the same run. Collective over sim comm. Real mode.
  [[nodiscard]] std::uint64_t state_hash();

  /// This rank's cmat slice (valid after initialize()).
  [[nodiscard]] const collision::CollisionTensor& cmat() const { return *cmat_; }

  // --- restart support (see gyro/restart.hpp) -------------------------------
  /// Raw view of this rank's state slice in the streaming layout. Real mode
  /// only (model mode carries no data). Used by the restart reader/writer.
  [[nodiscard]] std::span<const cplx> state_data() const { return h_.data(); }
  [[nodiscard]] std::span<cplx> state_data_mutable() { return h_.data(); }
  /// Restore the step counter when resuming from a checkpoint.
  void set_steps_taken(int steps) { steps_ = steps; }
  [[nodiscard]] int share_index() const { return comms_.share_index; }
  [[nodiscard]] int sim_rank() const { return comms_.sim.rank(); }
  /// Global index of this rank's first velocity row / toroidal column —
  /// the slice coordinates the elastic checkpoint layer records so state
  /// written under one (pv, pt) can be restored under another.
  [[nodiscard]] int iv_global_offset() const {
    return comms_.nv.rank() * nv_loc();
  }
  [[nodiscard]] int it_global_offset() const {
    return comms_.t.rank() * nt_loc();
  }
  /// The communicator cmat is distributed over (nv comm in CGYRO, the
  /// ensemble-wide one in XGYRO).
  [[nodiscard]] mpi::Comm& coll_comm() { return comms_.coll; }
  [[nodiscard]] std::uint64_t input_cmat_fingerprint() const {
    return input_.cmat_fingerprint();
  }

  /// Per-rank memory inventory for this decomposition (pure accounting —
  /// valid in both modes, no allocation needed).
  [[nodiscard]] cluster::MemoryInventory memory_inventory() const;
  static cluster::MemoryInventory memory_inventory(const Input& input,
                                                   const Decomposition& d,
                                                   int n_sims_sharing);

  // --- local sizes ----------------------------------------------------------
  [[nodiscard]] int nv_loc() const { return input_.nv() / decomp_.pv; }
  [[nodiscard]] int nt_loc() const { return input_.nt() / decomp_.pt; }
  [[nodiscard]] int nc_loc_coll() const {
    return input_.nc() / (decomp_.pv * comms_.n_sims_sharing);
  }
  [[nodiscard]] int n_coll_cells() const { return nc_loc_coll() * nt_loc(); }

 private:
  // real-mode internals
  void build_tables();
  void build_cmat();
  void apply_initial_condition();
  void field_solve(const tensor::Tensor3Z& h);
  void upwind_solve(const tensor::Tensor3Z& h);
  void compute_rhs(const tensor::Tensor3Z& h, tensor::Tensor3Z& rhs);
  void nonlinear_term(const tensor::Tensor3Z& h);
  void collision_step();
  void apply_collisions_range(int a_lo, int a_hi);
  void rk4_step();

  // model-mode internals
  void model_initialize();
  void model_step();

  // shared helpers
  [[nodiscard]] int it_global(int it_loc) const;
  [[nodiscard]] int global_ic_of_coll_cell(int a) const;
  [[nodiscard]] size_t state_elems() const {
    return static_cast<size_t>(nv_loc()) * input_.nc() * nt_loc();
  }
  [[nodiscard]] std::uint64_t field_bytes() const {
    return static_cast<std::uint64_t>(input_.nc()) * nt_loc() * sizeof(cplx);
  }

  Input input_;
  Decomposition decomp_;
  CommLayout comms_;
  mpi::Proc* proc_;
  Mode mode_;
  ComputeModel compute_model_;

  Geometry geometry_;
  std::unique_ptr<vgrid::VelocityGrid> vgrid_;

  int steps_ = 0;

  // streaming-phase state (real mode)
  tensor::Tensor3Z h_, acc_, stage_, k_;
  tensor::Tensor3Z nl_;                  // nonlinear term at current stage
  tensor::Tensor3<double> gyro_j_;       // gyroaverage table (nv_loc, nc, nt_loc)
  /// Stacked field moments, slot-major: [field][ic][it_loc]. Slot 0 is φ;
  /// slots 1,2 are the A∥/B∥-like moments when n_field = 3 (they ride the
  /// same AllReduce, as in electromagnetic CGYRO).
  std::vector<cplx> field_stack_;
  std::vector<cplx> u_;                  // upwind moment (nc × nt_loc)
  std::vector<double> denom_, unorm_;    // field denominators
  std::vector<int> iv_global_;           // local iv -> global iv
  /// Precomputed moment weights (built once in build_tables): field_w_ holds
  /// charge·moment·quadrature per (field, ivl), upwind_w_ holds
  /// weight·|v_par| per ivl — both were recomputed per (ic, itl) before.
  std::vector<double> field_w_;          // (n_field × nv_loc)
  std::vector<double> upwind_w_;         // (nv_loc)

  // collision-phase objects
  std::unique_ptr<tensor::EnsembleTransposer<cplx>> coll_transpose_;
  std::vector<tensor::Tensor3Z> coll_states_;
  std::unique_ptr<collision::CollisionTensor> cmat_;
  /// Pack/unpack panel for the batched collision apply: two nv×k row-major
  /// panels (input and output), k = n_sims_sharing.
  std::vector<cplx> coll_scratch_;

  // nonlinear-phase objects
  std::unique_ptr<tensor::EnsembleTransposer<cplx>> nl_transpose_;
  tensor::Tensor3Z nl_str_perm_;          // (nt_loc, nc, nv_loc)
  std::vector<tensor::Tensor3Z> nl_layout_;
  std::vector<cplx> phi_full_t_;          // φ gathered over t (nc × nt)
  /// FFT plan and bracket scratch, built once in initialize() — previously
  /// reallocated on every RK stage of every step.
  std::unique_ptr<fft::Plan> nl_plan_;
  std::vector<cplx> nl_a_, nl_b_, nl_c_, nl_d_;  // bracket lines (nt each)
  std::vector<cplx> nl_gather_;           // allgather staging (nc × nt)
};

/// Format per-phase timing totals of a finished run, CGYRO out.cgyro.timing
/// style. `ranks` filters which world ranks to aggregate (empty = all).
std::string format_timing(const mpi::RunResult& result,
                          const std::vector<std::string>& phases);

}  // namespace xg::gyro
