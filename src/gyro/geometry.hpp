// Flux-tube spectral geometry: wavenumbers, gyroaverage factors, and the
// field-equation denominators.
//
// Configuration index ic = ir·n_theta + itheta (radial × poloidal);
// toroidal index it selects the binormal mode. k_x twists with theta through
// magnetic shear, so k_perp² — and through the gyro-diffusion term, cmat —
// genuinely varies across configuration cells and toroidal modes. That
// variation is why CGYRO must store one matrix per (ic, it) instead of one
// matrix total.
#pragma once

#include <vector>

#include "gyro/input.hpp"
#include "vgrid/velocity_grid.hpp"

namespace xg::gyro {

class Geometry {
 public:
  explicit Geometry(const Input& input);

  [[nodiscard]] int nc() const { return nc_; }
  [[nodiscard]] int nt() const { return nt_; }

  [[nodiscard]] int ir_of(int ic) const { return ic / n_theta_; }
  [[nodiscard]] int itheta_of(int ic) const { return ic % n_theta_; }

  /// Poloidal angle θ ∈ [−π, π) of a configuration cell.
  [[nodiscard]] double theta(int ic) const;

  /// Radial wavenumber (shear-twisted) and binormal wavenumber.
  [[nodiscard]] double kx(int ic, int it) const;
  [[nodiscard]] double ky(int it) const;

  [[nodiscard]] double kperp2(int ic, int it) const {
    const double x = kx(ic, it);
    const double y = ky(it);
    return x * x + y * y;
  }

  /// Parallel wavenumber model: k_par ∝ 1/(qR), modulated over theta.
  [[nodiscard]] double kpar(int ic) const;

  /// Padé gyroaverage ⟨J₀⟩ ≈ 1/(1 + b/2), b = k_perp²ρ_s²·x²(1−ξ²)/2.
  [[nodiscard]] double gyroaverage(const vgrid::VelocityGrid& grid, int iv,
                                   int ic, int it) const;

  /// Field (quasineutrality) denominator Σ_s Z_s²·n_s/T_s·(1 − Γ₀(b_s)),
  /// with the Padé Γ₀ = 1/(1+b). Strictly positive for k_perp > 0.
  [[nodiscard]] double field_denominator(int ic, int it) const;

  /// Thermal gyroradius² of species s (B = 1 units).
  [[nodiscard]] double rho2(int is) const { return rho2_[is]; }

 private:
  int n_radial_, n_theta_, nt_, nc_;
  double shear_, q_safety_, rho_star_;
  bool adiabatic_ = false;
  double dkx_, dky_;
  std::vector<double> rho2_;
  std::vector<vgrid::Species> species_;
};

}  // namespace xg::gyro
