#include "gyro/decomposition.hpp"

#include "util/error.hpp"
#include "util/format.hpp"

namespace xg::gyro {

void Decomposition::validate(const Input& input, int n_sims_sharing) const {
  XG_REQUIRE(pv >= 1 && pt >= 1, "Decomposition: pv, pt must be >= 1");
  XG_REQUIRE(input.n_toroidal % pt == 0,
             strprintf("Decomposition: n_toroidal=%d not divisible by pt=%d",
                       input.n_toroidal, pt));
  XG_REQUIRE(input.nv() % pv == 0,
             strprintf("Decomposition: nv=%d not divisible by pv=%d",
                       input.nv(), pv));
  XG_REQUIRE(input.nc() % (pv * n_sims_sharing) == 0,
             strprintf("Decomposition: nc=%d not divisible by k*pv=%d",
                       input.nc(), pv * n_sims_sharing));
  XG_REQUIRE(input.nc() % pt == 0,
             strprintf("Decomposition: nc=%d not divisible by pt=%d "
                       "(nonlinear transpose)",
                       input.nc(), pt));
}

Decomposition Decomposition::choose(const Input& input, int nranks,
                                    int n_sims_sharing) {
  XG_REQUIRE(nranks >= 1, "Decomposition::choose: nranks must be >= 1");
  for (int pt = std::min(nranks, input.n_toroidal); pt >= 1; --pt) {
    if (nranks % pt != 0 || input.n_toroidal % pt != 0) continue;
    Decomposition d{nranks / pt, pt};
    try {
      d.validate(input, n_sims_sharing);
      return d;
    } catch (const Error&) {
      continue;
    }
  }
  throw DecompositionError(
      strprintf("no valid (pv, pt) decomposition of %d ranks for grid "
                "nc=%d nv=%d nt=%d (k=%d)",
                nranks, input.nc(), input.nv(), input.n_toroidal,
                n_sims_sharing));
}

CommLayout make_cgyro_layout(const mpi::Comm& sim_comm, const Decomposition& d) {
  XG_REQUIRE(sim_comm.size() == d.nranks(),
             strprintf("make_cgyro_layout: comm size %d != pv*pt = %d",
                       sim_comm.size(), d.nranks()));
  CommLayout layout;
  layout.sim = sim_comm;
  const int r = sim_comm.rank();
  const int p_v = r % d.pv;
  const int p_t = r / d.pv;
  // CGYRO reuses one communicator for the field/upwind AllReduces and the
  // str↔coll transpose; we model that by aliasing coll to nv (same context).
  layout.nv = sim_comm.split(p_t, p_v, "nv");
  layout.t = sim_comm.split(p_v, p_t, "t");
  layout.coll = layout.nv;
  layout.n_sims_sharing = 1;
  layout.share_index = 0;
  return layout;
}

}  // namespace xg::gyro
