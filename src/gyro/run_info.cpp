#include "gyro/run_info.hpp"

#include <fstream>

#include "cluster/memory.hpp"
#include "gyro/geometry.hpp"
#include "gyro/simulation.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace xg::gyro {

std::string render_run_info(const Input& input, const Decomposition& d,
                            int n_sims_sharing,
                            const net::MachineSpec& machine) {
  std::string out;
  out += strprintf("# xgyro run info v1\n");
  out += strprintf("tag          : %s\n", input.tag.c_str());
  out += strprintf("grid         : nc=%d (n_radial=%d x n_theta=%d)  nv=%d "
                   "(n_species=%d x n_energy=%d x n_xi=%d)  nt=%d  n_field=%d\n",
                   input.nc(), input.n_radial, input.n_theta, input.nv(),
                   input.n_species(), input.n_energy, input.n_xi, input.nt(),
                   input.n_field);
  out += strprintf("time step    : dt=%g, %d steps per reporting interval\n",
                   input.dt, input.n_steps_per_report);
  out += strprintf("collisions   : nu_ee=%g pitch=%d energy=%d FLR=%d "
                   "conserve=%d xspecies=%d\n",
                   input.collision.nu_ee, input.collision.pitch_scattering,
                   input.collision.energy_relaxation,
                   input.collision.gyro_diffusion,
                   input.collision.conserve_moments,
                   input.collision.cross_species_exchange);
  out += strprintf("cmat         : fingerprint %016llx, shared by %d "
                   "simulation(s)\n",
                   static_cast<unsigned long long>(input.cmat_fingerprint()),
                   n_sims_sharing);
  out += strprintf("decomposition: %d ranks = pv %d x pt %d; nv_loc=%d "
                   "nt_loc=%d nc_loc(coll)=%d\n",
                   d.nranks(), d.pv, d.pt, input.nv() / d.pv,
                   input.nt() / d.pt, input.nc() / (d.pv * n_sims_sharing));
  out += strprintf("communicators: nv=%d  t=%d  coll=%d%s\n", d.pv, d.pt,
                   d.pv * n_sims_sharing,
                   n_sims_sharing > 1 ? " (ensemble-shared)" : " (= nv comm)");
  out += strprintf("machine      : %s, %d nodes x %d ranks, %s/rank\n",
                   machine.name.c_str(), machine.n_nodes,
                   machine.ranks_per_node,
                   human_bytes(machine.rank_memory_bytes).c_str());
  const auto inv = Simulation::memory_inventory(input, d, n_sims_sharing);
  const auto fit = cluster::check_fit(inv, machine);
  out += strprintf("memory/rank  : %s of %s (%.0f%%) — %s\n",
                   human_bytes(fit.required_bytes).c_str(),
                   human_bytes(fit.available_bytes).c_str(),
                   100.0 * fit.utilization, fit.fits ? "fits" : "DOES NOT FIT");
  out += inv.table();
  return out;
}

std::string render_grids(const Input& input) {
  const Geometry geo(input);
  const auto vg = input.make_velocity_grid();
  std::string out = "# xgyro grids v1\n";
  out += strprintf("# %d toroidal modes: n ky\n", input.nt());
  for (int it = 0; it < input.nt(); ++it) {
    out += strprintf("ky %d %.10e\n", it, geo.ky(it));
  }
  out += strprintf("# radial wavenumbers at theta=0, ky=0: p kx\n");
  for (int ir = 0; ir < input.n_radial; ++ir) {
    out += strprintf("kx %d %.10e\n", ir, geo.kx(ir * input.n_theta, 0));
  }
  out += strprintf("# %d energy nodes: i e w\n", input.n_energy);
  for (int ie = 0; ie < input.n_energy; ++ie) {
    out += strprintf("energy %d %.10e %.10e\n", ie, vg.energy(ie),
                     vg.energy_weight(ie));
  }
  out += strprintf("# %d pitch nodes: i xi w\n", input.n_xi);
  for (int ix = 0; ix < input.n_xi; ++ix) {
    out += strprintf("xi %d %.10e %.10e\n", ix, vg.xi(ix), vg.xi_weight(ix));
  }
  return out;
}

namespace {
void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw Error(strprintf("cannot open '%s' for writing", path.c_str()));
  f << text;
  if (!f) throw Error(strprintf("short write to '%s'", path.c_str()));
}
}  // namespace

void write_run_info(const std::string& path, const Input& input,
                    const Decomposition& d, int n_sims_sharing,
                    const net::MachineSpec& machine) {
  write_text(path, render_run_info(input, d, n_sims_sharing, machine));
}

void write_grids(const std::string& path, const Input& input) {
  write_text(path, render_grids(input));
}

}  // namespace xg::gyro
