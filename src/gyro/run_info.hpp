// Run metadata artifacts, CGYRO-style: out.cgyro.info (dimensions,
// decomposition, memory) and out.cgyro.grids (the discrete wavenumber and
// velocity grids). CGYRO writes these at startup; downstream tooling and
// humans read them to sanity-check a run before burning node-hours.
#pragma once

#include <string>

#include "gyro/decomposition.hpp"
#include "gyro/input.hpp"
#include "simnet/machine.hpp"

namespace xg::gyro {

/// Render the out.cgyro.info-style run summary: grid sizes, per-rank
/// decomposition, communicator sizes, and the memory inventory (with the
/// cmat share highlighted, k = simulations sharing it).
std::string render_run_info(const Input& input, const Decomposition& d,
                            int n_sims_sharing, const net::MachineSpec& machine);

/// Render the out.cgyro.grids-style listing: toroidal wavenumbers ky,
/// radial wavenumber range, energy nodes/weights and pitch nodes.
std::string render_grids(const Input& input);

/// Write either artifact to a file; throws xg::Error on I/O failure.
void write_run_info(const std::string& path, const Input& input,
                    const Decomposition& d, int n_sims_sharing,
                    const net::MachineSpec& machine);
void write_grids(const std::string& path, const Input& input);

}  // namespace xg::gyro
