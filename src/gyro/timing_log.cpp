#include "gyro/timing_log.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/strings.hpp"

namespace xg::gyro {

std::vector<TimingRow> timing_rows(const mpi::RunResult& result,
                                   const std::vector<std::string>& phases) {
  std::vector<TimingRow> rows;
  rows.reserve(phases.size());
  for (const auto& phase : phases) {
    TimingRow row;
    row.phase = phase;
    for (const auto& r : result.ranks) {
      const auto it = r.phases.find(phase);
      if (it == r.phases.end()) continue;
      row.comm_s = std::max(row.comm_s, it->second.comm_s);
      row.compute_s = std::max(row.compute_s, it->second.compute_s);
      row.total_s =
          std::max(row.total_s, it->second.comm_s + it->second.compute_s);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_timing_log(const std::vector<TimingRow>& rows,
                              double makespan_s) {
  std::string out = "# xgyro timing v1\n# phase comm compute total\n";
  for (const auto& r : rows) {
    out += strprintf("%s %.17e %.17e %.17e\n", r.phase.c_str(), r.comm_s,
                     r.compute_s, r.total_s);
  }
  out += strprintf("# makespan %.17e\n", makespan_s);
  return out;
}

void write_timing_log(const std::string& path,
                      const std::vector<TimingRow>& rows, double makespan_s) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw Error(strprintf("cannot open '%s' for writing", path.c_str()));
  f << render_timing_log(rows, makespan_s);
  if (!f) throw Error(strprintf("short write to '%s'", path.c_str()));
}

std::vector<TimingRow> parse_timing_log(const std::string& text,
                                        double* makespan_out) {
  std::vector<TimingRow> rows;
  bool saw_header = false;
  int lineno = 0;
  // parse_double accepts strtod's "nan"/"inf" spellings; a timing log with
  // non-finite seconds is corrupt, so reject them here with the line number.
  const auto finite = [&](double v, const char* what) {
    if (!std::isfinite(v)) {
      throw InputError(strprintf("timing log line %d: non-finite %s value",
                                 lineno, what));
    }
    return v;
  };
  for (const auto& raw : split(text, '\n')) {
    ++lineno;
    const auto line = trim(raw);
    if (line.empty()) continue;
    if (starts_with(line, "#")) {
      if (line.find("xgyro timing v1") != std::string_view::npos) {
        saw_header = true;
      }
      const auto fields = split_ws(line);
      if (fields.size() == 3 && fields[1] == "makespan" && makespan_out) {
        *makespan_out = finite(parse_double(fields[2], "makespan"), "makespan");
      }
      continue;
    }
    const auto fields = split_ws(line);
    if (fields.size() != 4) {
      throw InputError(strprintf(
          "timing log line %d: expected 'phase comm compute total', got '%s'",
          lineno, std::string(line).c_str()));
    }
    TimingRow row;
    row.phase = fields[0];
    row.comm_s = finite(parse_double(fields[1], "comm"), "comm");
    row.compute_s = finite(parse_double(fields[2], "compute"), "compute");
    row.total_s = finite(parse_double(fields[3], "total"), "total");
    rows.push_back(std::move(row));
  }
  if (!saw_header) {
    throw InputError("timing log: missing '# xgyro timing v1' header");
  }
  return rows;
}

std::vector<TimingRow> load_timing_log(const std::string& path,
                                       double* makespan_out) {
  std::ifstream f(path);
  if (!f) throw Error(strprintf("cannot open timing log '%s'", path.c_str()));
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_timing_log(buf.str(), makespan_out);
}

}  // namespace xg::gyro
