// Distributed layout change between the streaming and collision phases.
//
// CGYRO (k = 1): over the nv-splitting communicator of size P_v, move from
//   str  layout  (nv_loc, nc,      nt_loc)  — every rank holds all of nc
//   coll layout  (nc_loc, nv,      nt_loc)  — every rank holds all of nv
// with nc_loc = nc / P_v, via one uniform AllToAll.
//
// XGYRO (k > 1): the *same* exchange runs over the ensemble-wide collision
// communicator of size Q = k·P_v (paper Fig. 3). Each rank still sends one
// uniform block to every peer, but now owns only nc / Q configuration cells
// — for *every one of the k simulations*. The constant tensor cmat is stored
// per (nc cell), so its per-rank slice shrinks by k while the per-rank state
// volume is unchanged. This class implements both cases with one code path;
// k = 1 is exactly CGYRO's transpose.
//
// Conventions:
//  * The collision communicator orders ranks simulation-major:
//    coll_rank = sim_index · P_v + p_v, where p_v is the rank's position in
//    its simulation's nv communicator.
//  * nc must be divisible by k·P_v and nv by P_v (CGYRO imposes the same
//    style of divisibility constraints on its own grids).
#pragma once

#include <algorithm>
#include <vector>

#include "simmpi/comm.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace xg::tensor {

template <typename T>
class EnsembleTransposer {
 public:
  /// k simulations, each str-distributed over `pv` ranks; configuration dim
  /// `nc`, velocity dim `nv`, inner (toroidal-local) dim `n_inner`.
  EnsembleTransposer(int n_sims, int pv, int nc, int nv, int n_inner)
      : k_(n_sims), pv_(pv), nc_(nc), nv_(nv), inner_(n_inner) {
    XG_REQUIRE(k_ >= 1 && pv_ >= 1 && nc_ >= 1 && nv_ >= 1 && inner_ >= 1,
               "EnsembleTransposer: all dimensions must be positive");
    q_ = k_ * pv_;
    XG_REQUIRE(nc_ % q_ == 0,
               strprintf("EnsembleTransposer: nc=%d not divisible by k*pv=%d",
                         nc_, q_));
    XG_REQUIRE(nv_ % pv_ == 0,
               strprintf("EnsembleTransposer: nv=%d not divisible by pv=%d",
                         nv_, pv_));
    nc_loc_ = nc_ / q_;
    nv_loc_ = nv_ / pv_;
    block_ = static_cast<size_t>(nv_loc_) * nc_loc_ * inner_;
    // Staging buffers are allocated on first real-data use: model-mode runs
    // (virtual payloads only) must not pay the full-state footprint.
  }

  [[nodiscard]] int n_sims() const { return k_; }
  [[nodiscard]] int pv() const { return pv_; }
  [[nodiscard]] int coll_comm_size() const { return q_; }
  [[nodiscard]] int nc_loc() const { return nc_loc_; }
  [[nodiscard]] int nv_loc() const { return nv_loc_; }
  [[nodiscard]] size_t block_elems() const { return block_; }

  /// Shape check helpers for the two layouts.
  [[nodiscard]] Tensor3<T> make_str_tensor() const {
    return Tensor3<T>(nv_loc_, nc_, inner_);
  }
  [[nodiscard]] std::vector<Tensor3<T>> make_coll_tensors() const {
    std::vector<Tensor3<T>> out;
    out.reserve(static_cast<size_t>(k_));
    for (int s = 0; s < k_; ++s) out.emplace_back(nc_loc_, nv_, inner_);
    return out;
  }

  /// str → coll. `str_in` is this rank's simulation state (nv_loc, nc,
  /// inner). `coll_out` gets one (nc_loc, nv, inner) tensor per simulation.
  /// Collective over `coll_comm` (size k·pv, simulation-major order).
  void to_coll(mpi::Comm& coll_comm, const Tensor3<T>& str_in,
               std::vector<Tensor3<T>>& coll_out) {
    check_comm(coll_comm);
    ensure_staging();
    XG_ASSERT(str_in.n0() == nv_loc_ && str_in.n1() == nc_ && str_in.n2() == inner_);
    XG_ASSERT(static_cast<int>(coll_out.size()) == k_);

    // Pack: block for peer q = my nv_loc rows over q's nc_loc cells.
    size_t pos = 0;
    for (int q = 0; q < q_; ++q) {
      const int a0 = q * nc_loc_;
      for (int bl = 0; bl < nv_loc_; ++bl) {
        for (int a = a0; a < a0 + nc_loc_; ++a) {
          const auto row = str_in.inner(bl, a);
          for (int t = 0; t < inner_; ++t) send_[pos++] = row[t];
        }
      }
    }
    coll_comm.alltoall(std::span<const T>(send_), std::span<T>(recv_));

    // Unpack: the block from peer j carries simulation j/pv's rows
    // [ (j%pv)·nv_loc , ... ) over my nc_loc cells.
    pos = 0;
    for (int j = 0; j < q_; ++j) {
      const int sim = j / pv_;
      const int b0 = (j % pv_) * nv_loc_;
      auto& out = coll_out[sim];
      XG_ASSERT(out.n0() == nc_loc_ && out.n1() == nv_ && out.n2() == inner_);
      for (int bl = 0; bl < nv_loc_; ++bl) {
        for (int a = 0; a < nc_loc_; ++a) {
          auto row = out.inner(a, b0 + bl);
          for (int t = 0; t < inner_; ++t) row[t] = recv_[pos++];
        }
      }
    }
  }

  /// coll → str: exact inverse of to_coll.
  void to_str(mpi::Comm& coll_comm, const std::vector<Tensor3<T>>& coll_in,
              Tensor3<T>& str_out) {
    check_comm(coll_comm);
    ensure_staging();
    XG_ASSERT(static_cast<int>(coll_in.size()) == k_);
    XG_ASSERT(str_out.n0() == nv_loc_ && str_out.n1() == nc_ && str_out.n2() == inner_);

    // Pack: block for peer j = j's nv_loc rows of simulation j/pv over my
    // nc_loc cells, ordered (bl, a, t) to mirror to_coll's unpack.
    size_t pos = 0;
    for (int j = 0; j < q_; ++j) {
      const int sim = j / pv_;
      const int b0 = (j % pv_) * nv_loc_;
      const auto& in = coll_in[sim];
      XG_ASSERT(in.n0() == nc_loc_ && in.n1() == nv_ && in.n2() == inner_);
      for (int bl = 0; bl < nv_loc_; ++bl) {
        for (int a = 0; a < nc_loc_; ++a) {
          const auto row = in.inner(a, b0 + bl);
          for (int t = 0; t < inner_; ++t) send_[pos++] = row[t];
        }
      }
    }
    coll_comm.alltoall(std::span<const T>(send_), std::span<T>(recv_));

    // Unpack: block from peer q carries my nv_loc rows over q's nc cells.
    pos = 0;
    for (int q = 0; q < q_; ++q) {
      const int a0 = q * nc_loc_;
      for (int bl = 0; bl < nv_loc_; ++bl) {
        for (int a = a0; a < a0 + nc_loc_; ++a) {
          auto row = str_out.inner(bl, a);
          for (int t = 0; t < inner_; ++t) row[t] = recv_[pos++];
        }
      }
    }
  }

  /// Model-mode variants: identical message schedule, virtual payloads.
  void to_coll_virtual(mpi::Comm& coll_comm) const {
    check_comm(coll_comm);
    coll_comm.alltoall_virtual(block_ * sizeof(T));
  }
  void to_str_virtual(mpi::Comm& coll_comm) const {
    check_comm(coll_comm);
    coll_comm.alltoall_virtual(block_ * sizeof(T));
  }

  // --- pipelined str → coll with per-chunk work (comm/compute overlap) -----
  //
  // The destination cell range nc_loc is split into `n_chunks` sub-ranges.
  // All sub-blocks are posted as nonblocking sends up front; the receiver
  // then completes chunk 0, runs `work(chunk)` on those cells while later
  // chunks are still in flight, and so on — the overlap CGYRO uses to hide
  // its transposes behind the collision kernels. `work(c)` may touch cells
  // [c·nc_loc/n_chunks, (c+1)·nc_loc/n_chunks) of every coll_out tensor.
  // Requires nc_loc % n_chunks == 0. With n_chunks = 1 the message payloads
  // equal the plain path's, but through the pairwise-exchange vs
  // isend-all/recv-all schedules the timings differ slightly.

  template <typename Work>
  void to_coll_pipelined(mpi::Comm& coll_comm, const Tensor3<T>& str_in,
                         std::vector<Tensor3<T>>& coll_out, int n_chunks,
                         Work&& work) {
    check_comm(coll_comm);
    check_chunks(n_chunks);
    XG_ASSERT(str_in.n0() == nv_loc_ && str_in.n1() == nc_ && str_in.n2() == inner_);
    XG_ASSERT(static_cast<int>(coll_out.size()) == k_);
    ensure_staging();
    const int me = coll_comm.rank();
    const int a_per_chunk = nc_loc_ / n_chunks;
    const size_t sub = static_cast<size_t>(nv_loc_) * a_per_chunk * inner_;

    // Pack everything and post all sends (chunk-major staging layout).
    std::vector<mpi::Request> sends;
    sends.reserve(static_cast<size_t>(n_chunks) * (q_ - 1));
    for (int c = 0; c < n_chunks; ++c) {
      for (int q = 0; q < q_; ++q) {
        T* seg = send_.data() + (static_cast<size_t>(c) * q_ + q) * sub;
        size_t pos = 0;
        const int a0 = q * nc_loc_ + c * a_per_chunk;
        for (int bl = 0; bl < nv_loc_; ++bl) {
          for (int a = a0; a < a0 + a_per_chunk; ++a) {
            const auto row = str_in.inner(bl, a);
            for (int t = 0; t < inner_; ++t) seg[pos++] = row[t];
          }
        }
        if (q == me) continue;
        sends.push_back(coll_comm.isend(
            std::span<const T>(seg, sub), q, kPipelineTagBase + c));
      }
    }
    // Complete chunk by chunk, overlapping work with later chunks' flight.
    for (int c = 0; c < n_chunks; ++c) {
      for (int j = 0; j < q_; ++j) {
        T* seg = recv_.data() + static_cast<size_t>(j) * sub;
        if (j == me) {
          const T* self = send_.data() + (static_cast<size_t>(c) * q_ + me) * sub;
          std::copy(self, self + sub, seg);
        } else {
          coll_comm.recv(std::span<T>(seg, sub), j, kPipelineTagBase + c);
        }
        const int sim = j / pv_;
        const int b0 = (j % pv_) * nv_loc_;
        auto& out = coll_out[sim];
        size_t pos = 0;
        for (int bl = 0; bl < nv_loc_; ++bl) {
          for (int a = 0; a < a_per_chunk; ++a) {
            auto row = out.inner(c * a_per_chunk + a, b0 + bl);
            for (int t = 0; t < inner_; ++t) row[t] = seg[pos++];
          }
        }
      }
      work(c);
    }
    coll_comm.waitall(std::span<mpi::Request>(sends));
  }

  /// Model-mode twin of to_coll_pipelined: identical message schedule with
  /// virtual payloads; `work(c)` should charge the chunk's compute.
  template <typename Work>
  void to_coll_pipelined_virtual(mpi::Comm& coll_comm, int n_chunks,
                                 Work&& work) const {
    check_comm(coll_comm);
    check_chunks(n_chunks);
    const int me = coll_comm.rank();
    const int a_per_chunk = nc_loc_ / n_chunks;
    const std::uint64_t sub =
        static_cast<std::uint64_t>(nv_loc_) * a_per_chunk * inner_ * sizeof(T);
    std::vector<mpi::Request> sends;
    sends.reserve(static_cast<size_t>(n_chunks) * (q_ - 1));
    for (int c = 0; c < n_chunks; ++c) {
      for (int q = 0; q < q_; ++q) {
        if (q == me) continue;
        sends.push_back(coll_comm.isend_virtual(sub, q, kPipelineTagBase + c));
      }
    }
    for (int c = 0; c < n_chunks; ++c) {
      for (int j = 0; j < q_; ++j) {
        if (j == me) continue;
        coll_comm.recv_virtual(sub, j, kPipelineTagBase + c);
      }
      work(c);
    }
    coll_comm.waitall(std::span<mpi::Request>(sends));
  }

  /// Largest valid pipeline chunk count ≤ `wanted`.
  [[nodiscard]] int clamp_chunks(int wanted) const {
    int c = std::max(1, std::min(wanted, nc_loc_));
    while (nc_loc_ % c != 0) --c;
    return c;
  }

 private:
  static constexpr int kPipelineTagBase = 1 << 20;

  void check_chunks(int n_chunks) const {
    XG_REQUIRE(n_chunks >= 1 && nc_loc_ % n_chunks == 0,
               strprintf("to_coll_pipelined: nc_loc=%d not divisible by "
                         "n_chunks=%d",
                         nc_loc_, n_chunks));
  }

  void ensure_staging() {
    if (send_.size() != block_ * q_) {
      send_.resize(block_ * q_);
      recv_.resize(block_ * q_);
    }
  }

  void check_comm(const mpi::Comm& comm) const {
    XG_REQUIRE(comm.size() == q_,
               strprintf("EnsembleTransposer: comm size %d, expected k*pv=%d",
                         comm.size(), q_));
  }

  int k_, pv_, nc_, nv_, inner_;
  int q_ = 0, nc_loc_ = 0, nv_loc_ = 0;
  size_t block_ = 0;
  std::vector<T> send_, recv_;
};

}  // namespace xg::tensor
