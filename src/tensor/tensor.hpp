// Dense rank-3 tensor, row-major. The gyrokinetic state is carried as
// (dim0, dim1, dim2) complex tensors whose role depends on the phase layout:
//   streaming  : h(nv_loc, nc,     nt_loc)   — full configuration dim
//   collision  : h(nc_loc, nv,     nt_loc)   — full velocity dim
// (see DESIGN.md §1 and the paper's Fig. 1).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace xg::tensor {

template <typename T>
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(int n0, int n1, int n2, T fill = T{})
      : n0_(n0), n1_(n1), n2_(n2),
        data_(static_cast<size_t>(n0) * n1 * n2, fill) {
    XG_ASSERT(n0 >= 0 && n1 >= 0 && n2 >= 0);
  }

  [[nodiscard]] int n0() const { return n0_; }
  [[nodiscard]] int n1() const { return n1_; }
  [[nodiscard]] int n2() const { return n2_; }
  [[nodiscard]] size_t size() const { return data_.size(); }
  [[nodiscard]] size_t size_bytes() const { return data_.size() * sizeof(T); }

  T& operator()(int i, int j, int k) {
    return data_[(static_cast<size_t>(i) * n1_ + j) * n2_ + k];
  }
  const T& operator()(int i, int j, int k) const {
    return data_[(static_cast<size_t>(i) * n1_ + j) * n2_ + k];
  }

  /// Contiguous inner-most row at (i, j): length n2.
  [[nodiscard]] std::span<T> inner(int i, int j) {
    return {data_.data() + (static_cast<size_t>(i) * n1_ + j) * n2_,
            static_cast<size_t>(n2_)};
  }
  [[nodiscard]] std::span<const T> inner(int i, int j) const {
    return {data_.data() + (static_cast<size_t>(i) * n1_ + j) * n2_,
            static_cast<size_t>(n2_)};
  }

  [[nodiscard]] std::span<T> data() { return data_; }
  [[nodiscard]] std::span<const T> data() const { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  friend bool operator==(const Tensor3& a, const Tensor3& b) {
    return a.n0_ == b.n0_ && a.n1_ == b.n1_ && a.n2_ == b.n2_ &&
           a.data_ == b.data_;
  }

 private:
  int n0_ = 0, n1_ = 0, n2_ = 0;
  std::vector<T> data_;
};

using Tensor3Z = Tensor3<std::complex<double>>;
using Tensor3D = Tensor3<double>;

/// max |a - b| over all entries (test helper).
template <typename T>
double max_abs_diff(const Tensor3<T>& a, const Tensor3<T>& b) {
  XG_ASSERT(a.n0() == b.n0() && a.n1() == b.n1() && a.n2() == b.n2());
  double m = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    const double d = std::abs(std::complex<double>(da[i]) -
                              std::complex<double>(db[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace xg::tensor
