#include "checkpoint/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "gyro/simulation.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"

namespace xg::ckpt {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kShardMagic = 0x3130545048434758ull;  // "XGCKPT01"
constexpr std::uint32_t kShardVersion = 1;

/// Fixed 64-byte shard header; explicit padding keeps the on-disk bytes
/// deterministic across compilers.
struct ShardHeader {
  std::uint64_t magic = kShardMagic;
  std::uint32_t version = kShardVersion;
  std::int32_t member = 0;
  std::int32_t iv0 = 0, nv_loc = 0, nc = 0, it0 = 0, nt_loc = 0;
  std::uint32_t pad = 0;
  std::int64_t steps = 0;
  std::uint64_t cmat_fingerprint = 0;
  std::uint64_t payload_hash = 0;
};
static_assert(sizeof(ShardHeader) == 64, "shard header must be packed");

std::uint64_t hash_payload(std::span<const cplx> data) {
  Hasher h;
  h.span_c64(data);
  return h.digest();
}

std::string hex64(std::uint64_t v) {
  return strprintf("%016llx", static_cast<unsigned long long>(v));
}

std::uint64_t parse_hex64(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (s.empty() || end == nullptr || *end != '\0') {
    throw CheckpointError(strprintf("checkpoint: bad hex value '%s' for %s",
                                    s.c_str(), what.c_str()));
  }
  return v;
}

std::string shard_filename(const Slice& s) {
  return strprintf("m%d.v%d.t%d.shard", s.member, s.iv0, s.it0);
}

void write_shard_file(const std::string& path, const ShardHeader& hd,
                      std::span<const cplx> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CheckpointError(
        strprintf("checkpoint: cannot open '%s' for writing", path.c_str()));
  }
  out.write(reinterpret_cast<const char*>(&hd), sizeof hd);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
  if (!out) {
    throw CheckpointError(strprintf("checkpoint: short write to '%s'",
                                    path.c_str()));
  }
}

/// Read and verify one shard file against its manifest entry; returns the
/// payload. Every failure mode is a CheckpointError naming the file.
std::vector<cplx> read_shard_file(const std::string& path,
                                  const ShardInfo& info) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(strprintf("checkpoint: missing shard '%s'",
                                    path.c_str()));
  }
  ShardHeader hd;
  in.read(reinterpret_cast<char*>(&hd), sizeof hd);
  if (!in) {
    throw CheckpointError(strprintf("checkpoint: truncated header in '%s'",
                                    path.c_str()));
  }
  if (hd.magic != kShardMagic) {
    throw CheckpointError(strprintf("checkpoint: '%s' is not a shard file",
                                    path.c_str()));
  }
  if (hd.version != kShardVersion) {
    throw CheckpointError(strprintf("checkpoint: '%s': unsupported version %u",
                                    path.c_str(), hd.version));
  }
  const Slice& s = info.slice;
  if (hd.member != s.member || hd.iv0 != s.iv0 || hd.nv_loc != s.nv_loc ||
      hd.nc != s.nc || hd.it0 != s.it0 || hd.nt_loc != s.nt_loc ||
      hd.steps != info.steps || hd.payload_hash != info.payload_hash) {
    throw CheckpointError(strprintf(
        "checkpoint: '%s': header disagrees with manifest", path.c_str()));
  }
  std::vector<cplx> payload(s.elems());
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size() * sizeof(cplx)));
  if (!in || in.gcount() !=
                 static_cast<std::streamsize>(payload.size() * sizeof(cplx))) {
    throw CheckpointError(strprintf("checkpoint: truncated payload in '%s'",
                                    path.c_str()));
  }
  if (hash_payload(payload) != info.payload_hash) {
    throw CheckpointError(strprintf(
        "checkpoint: payload hash mismatch in '%s' (corrupt shard)",
        path.c_str()));
  }
  return payload;
}

telemetry::Json manifest_to_json(const Manifest& man) {
  using telemetry::Json;
  Json members = Json::array();
  for (const auto& m : man.members) {
    members.push(Json::object()
                     .set("tag", Json(m.tag))
                     .set("cmat_fingerprint", Json(hex64(m.cmat_fingerprint)))
                     .set("nv", Json(m.nv))
                     .set("nc", Json(m.nc))
                     .set("nt", Json(m.nt))
                     .set("steps", Json(m.steps)));
  }
  Json shards = Json::array();
  for (const auto& s : man.shards) {
    shards.push(Json::object()
                    .set("file", Json(s.file))
                    .set("member", Json(s.slice.member))
                    .set("iv0", Json(s.slice.iv0))
                    .set("nv_loc", Json(s.slice.nv_loc))
                    .set("nc", Json(s.slice.nc))
                    .set("it0", Json(s.slice.it0))
                    .set("nt_loc", Json(s.slice.nt_loc))
                    .set("steps", Json(s.steps))
                    .set("payload_bytes", Json(s.payload_bytes))
                    .set("payload_hash", Json(hex64(s.payload_hash))));
  }
  return Json::object()
      .set("schema", Json("xgyro.checkpoint"))
      .set("schema_version", Json(Manifest::kSchemaVersion))
      .set("interval", Json(man.interval))
      .set("members", std::move(members))
      .set("shards", std::move(shards));
}

Manifest manifest_from_json(const telemetry::Json& doc,
                            const std::string& path) {
  const auto* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "xgyro.checkpoint") {
    throw CheckpointError(strprintf(
        "checkpoint: %s: missing or wrong 'schema'", path.c_str()));
  }
  if (doc.at("schema_version").as_int() != Manifest::kSchemaVersion) {
    throw CheckpointError(strprintf(
        "checkpoint: %s: unsupported schema_version %lld", path.c_str(),
        static_cast<long long>(doc.at("schema_version").as_int())));
  }
  Manifest man;
  man.interval = doc.at("interval").as_int();
  for (const auto& m : doc.at("members").elems()) {
    MemberMeta meta;
    meta.tag = m.at("tag").as_string();
    meta.cmat_fingerprint =
        parse_hex64(m.at("cmat_fingerprint").as_string(), "cmat_fingerprint");
    meta.nv = static_cast<int>(m.at("nv").as_int());
    meta.nc = static_cast<int>(m.at("nc").as_int());
    meta.nt = static_cast<int>(m.at("nt").as_int());
    meta.steps = m.at("steps").as_int();
    man.members.push_back(std::move(meta));
  }
  for (const auto& s : doc.at("shards").elems()) {
    ShardInfo info;
    info.file = s.at("file").as_string();
    info.slice.member = static_cast<int>(s.at("member").as_int());
    info.slice.iv0 = static_cast<int>(s.at("iv0").as_int());
    info.slice.nv_loc = static_cast<int>(s.at("nv_loc").as_int());
    info.slice.nc = static_cast<int>(s.at("nc").as_int());
    info.slice.it0 = static_cast<int>(s.at("it0").as_int());
    info.slice.nt_loc = static_cast<int>(s.at("nt_loc").as_int());
    info.steps = s.at("steps").as_int();
    info.payload_bytes =
        static_cast<std::uint64_t>(s.at("payload_bytes").as_int());
    info.payload_hash = parse_hex64(s.at("payload_hash").as_string(),
                                    "payload_hash");
    man.shards.push_back(std::move(info));
  }
  if (man.shards.empty()) {
    throw CheckpointError(strprintf("checkpoint: %s: no shards",
                                    path.c_str()));
  }
  return man;
}

/// Parse "ckpt-<digits>"; nullopt for anything else (including *.tmp).
std::optional<std::int64_t> parse_snapshot_name(const std::string& name) {
  constexpr std::string_view prefix = "ckpt-";
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string digits = name.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(std::strtoll(digits.c_str(), nullptr, 10));
}

}  // namespace

std::string snapshot_dirname(std::int64_t interval) {
  return strprintf("ckpt-%08lld", static_cast<long long>(interval));
}

// --- writer -----------------------------------------------------------------

struct CheckpointWriter::Pending {
  int registered = 0;
  Manifest manifest;
};

struct CheckpointWriter::Impl {
  std::string dir;
  int n_ranks = 0;
  int keep_last = 2;
  std::mutex mu;
  std::uint64_t committed = 0;
  std::map<std::int64_t, Pending> pending;
};

CheckpointWriter::CheckpointWriter(std::string dir, int n_ranks, int keep_last)
    : impl_(std::make_shared<Impl>()), dir_(dir) {
  XG_REQUIRE(n_ranks >= 1, "CheckpointWriter: need at least one rank");
  XG_REQUIRE(keep_last >= 1, "CheckpointWriter: keep_last must be >= 1");
  impl_->dir = dir;
  impl_->n_ranks = n_ranks;
  impl_->keep_last = keep_last;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw CheckpointError(strprintf(
        "checkpoint: cannot create directory '%s': %s", dir.c_str(),
        ec.message().c_str()));
  }
  // Stale staging dirs are aborted commits from a failed attempt; a fresh
  // writer (new attempt, possibly a different rank count) supersedes them.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

bool CheckpointWriter::add_shard(std::int64_t interval, const Slice& slice,
                                 const MemberMeta& meta,
                                 std::span<const cplx> data) {
  XG_REQUIRE(data.size() == slice.elems(),
             "CheckpointWriter: slice/data size mismatch");
  const std::scoped_lock lock(impl_->mu);
  const std::string tmp =
      impl_->dir + "/" + snapshot_dirname(interval) + ".tmp";
  auto& p = impl_->pending[interval];
  if (p.registered == 0) {
    std::error_code ec;
    fs::remove_all(tmp, ec);  // leftovers from an aborted identical interval
    fs::create_directories(tmp, ec);
    if (ec) {
      throw CheckpointError(strprintf(
          "checkpoint: cannot create staging dir '%s': %s", tmp.c_str(),
          ec.message().c_str()));
    }
    p.manifest.interval = interval;
  }

  if (slice.member < 0) {
    throw CheckpointError("checkpoint: negative member index");
  }
  auto& members = p.manifest.members;
  if (static_cast<size_t>(slice.member) >= members.size()) {
    members.resize(static_cast<size_t>(slice.member) + 1);
  }
  auto& existing = members[static_cast<size_t>(slice.member)];
  if (existing.nv == 0) {
    existing = meta;
  } else if (existing.cmat_fingerprint != meta.cmat_fingerprint ||
             existing.nv != meta.nv || existing.nc != meta.nc ||
             existing.nt != meta.nt || existing.steps != meta.steps) {
    throw CheckpointError(strprintf(
        "checkpoint: ranks disagree on member %d metadata at interval %lld",
        slice.member, static_cast<long long>(interval)));
  }

  ShardInfo info;
  info.file = shard_filename(slice);
  info.slice = slice;
  info.steps = meta.steps;
  info.payload_bytes = slice.elems() * sizeof(cplx);
  info.payload_hash = hash_payload(data);

  ShardHeader hd;
  hd.member = slice.member;
  hd.iv0 = slice.iv0;
  hd.nv_loc = slice.nv_loc;
  hd.nc = slice.nc;
  hd.it0 = slice.it0;
  hd.nt_loc = slice.nt_loc;
  hd.steps = meta.steps;
  hd.cmat_fingerprint = meta.cmat_fingerprint;
  hd.payload_hash = info.payload_hash;
  write_shard_file(tmp + "/" + info.file, hd, data);
  p.manifest.shards.push_back(std::move(info));

  if (++p.registered < impl_->n_ranks) return false;

  // Last registrant commits: manifest written last, then one atomic rename
  // flips the whole snapshot from invisible to valid.
  telemetry::write_json_file(tmp + "/manifest.json",
                             manifest_to_json(p.manifest));
  const std::string final_path =
      impl_->dir + "/" + snapshot_dirname(interval);
  std::error_code ec;
  fs::remove_all(final_path, ec);  // e.g. re-running over a corrupt snapshot
  fs::rename(tmp, final_path, ec);
  if (ec) {
    throw CheckpointError(strprintf(
        "checkpoint: cannot commit '%s': %s", final_path.c_str(),
        ec.message().c_str()));
  }
  impl_->pending.erase(interval);
  ++impl_->committed;

  // Prune: keep the newest keep_last committed snapshots.
  std::vector<std::pair<std::int64_t, fs::path>> committed;
  for (const auto& entry : fs::directory_iterator(impl_->dir)) {
    if (!entry.is_directory()) continue;
    if (const auto n = parse_snapshot_name(entry.path().filename().string())) {
      committed.emplace_back(*n, entry.path());
    }
  }
  std::sort(committed.begin(), committed.end());
  while (committed.size() > static_cast<size_t>(impl_->keep_last)) {
    fs::remove_all(committed.front().second, ec);
    committed.erase(committed.begin());
  }
  return true;
}

std::uint64_t CheckpointWriter::snapshots_committed() const {
  const std::scoped_lock lock(impl_->mu);
  return impl_->committed;
}

// --- reader -----------------------------------------------------------------

Manifest load_manifest(const std::string& snapshot_path) {
  const std::string path = snapshot_path + "/manifest.json";
  telemetry::Json doc;
  try {
    doc = telemetry::load_json_file(path);
  } catch (const Error& e) {
    throw CheckpointError(strprintf("checkpoint: %s: %s", path.c_str(),
                                    e.what()));
  }
  try {
    return manifest_from_json(doc, path);
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    throw CheckpointError(strprintf("checkpoint: %s: malformed manifest: %s",
                                    path.c_str(), e.what()));
  }
}

Manifest validate_snapshot(const std::string& snapshot_path) {
  const Manifest man = load_manifest(snapshot_path);
  // Per-member coverage accounting: a valid snapshot tiles each member's
  // global state exactly (shards never overlap by construction).
  std::vector<std::uint64_t> covered(man.members.size(), 0);
  for (const auto& info : man.shards) {
    const Slice& s = info.slice;
    if (s.member < 0 ||
        static_cast<size_t>(s.member) >= man.members.size()) {
      throw CheckpointError(strprintf(
          "checkpoint: %s: shard '%s' references unknown member %d",
          snapshot_path.c_str(), info.file.c_str(), s.member));
    }
    const MemberMeta& meta = man.members[static_cast<size_t>(s.member)];
    if (s.nc != meta.nc || s.iv0 < 0 || s.iv0 + s.nv_loc > meta.nv ||
        s.it0 < 0 || s.it0 + s.nt_loc > meta.nt) {
      throw CheckpointError(strprintf(
          "checkpoint: %s: shard '%s' ranges exceed member %d grid",
          snapshot_path.c_str(), info.file.c_str(), s.member));
    }
    (void)read_shard_file(snapshot_path + "/" + info.file, info);
    covered[static_cast<size_t>(s.member)] += s.elems();
  }
  for (size_t m = 0; m < man.members.size(); ++m) {
    const auto& meta = man.members[m];
    const auto want = static_cast<std::uint64_t>(meta.nv) * meta.nc * meta.nt;
    if (covered[m] != want) {
      throw CheckpointError(strprintf(
          "checkpoint: %s: member %zu covered by %llu of %llu elements",
          snapshot_path.c_str(), m,
          static_cast<unsigned long long>(covered[m]),
          static_cast<unsigned long long>(want)));
    }
  }
  return man;
}

ScanResult find_latest_valid(const std::string& dir) {
  ScanResult result;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return result;

  std::vector<std::pair<std::int64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    if (const auto n = parse_snapshot_name(entry.path().filename().string())) {
      candidates.emplace_back(*n, entry.path().string());
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [interval, path] : candidates) {
    try {
      (void)validate_snapshot(path);
      result.latest_valid = SnapshotRef{path, interval};
      break;
    } catch (const Error& e) {
      result.rejected.push_back(strprintf("%s: %s", path.c_str(), e.what()));
    }
  }
  return result;
}

std::int64_t restore_slice(const std::string& snapshot_path,
                           const Manifest& manifest, const Slice& want,
                           std::uint64_t expect_cmat_fingerprint,
                           std::span<cplx> out) {
  if (want.member < 0 ||
      static_cast<size_t>(want.member) >= manifest.members.size()) {
    throw CheckpointError(strprintf(
        "checkpoint: %s has no member %d", snapshot_path.c_str(),
        want.member));
  }
  const MemberMeta& meta =
      manifest.members[static_cast<size_t>(want.member)];
  if (meta.cmat_fingerprint != expect_cmat_fingerprint) {
    throw CheckpointError(strprintf(
        "checkpoint: %s: member %d cmat fingerprint mismatch — the snapshot "
        "came from a physically different configuration",
        snapshot_path.c_str(), want.member));
  }
  if (want.nc != meta.nc || want.iv0 + want.nv_loc > meta.nv ||
      want.it0 + want.nt_loc > meta.nt) {
    throw CheckpointError(strprintf(
        "checkpoint: %s: member %d grid is (nv=%d nc=%d nt=%d); requested "
        "slice iv0=%d+%d nc=%d it0=%d+%d does not fit",
        snapshot_path.c_str(), want.member, meta.nv, meta.nc, meta.nt,
        want.iv0, want.nv_loc, want.nc, want.it0, want.nt_loc));
  }
  XG_REQUIRE(out.size() == want.elems(),
             "restore_slice: output span size mismatch");

  std::uint64_t covered = 0;
  for (const auto& info : manifest.shards) {
    const Slice& s = info.slice;
    if (s.member != want.member) continue;
    const int iv_lo = std::max(s.iv0, want.iv0);
    const int iv_hi = std::min(s.iv0 + s.nv_loc, want.iv0 + want.nv_loc);
    const int it_lo = std::max(s.it0, want.it0);
    const int it_hi = std::min(s.it0 + s.nt_loc, want.it0 + want.nt_loc);
    if (iv_lo >= iv_hi || it_lo >= it_hi) continue;

    const std::vector<cplx> payload =
        read_shard_file(snapshot_path + "/" + info.file, info);
    for (int iv = iv_lo; iv < iv_hi; ++iv) {
      for (int ic = 0; ic < want.nc; ++ic) {
        const size_t src_row =
            (static_cast<size_t>(iv - s.iv0) * s.nc + ic) * s.nt_loc;
        const size_t dst_row =
            (static_cast<size_t>(iv - want.iv0) * want.nc + ic) * want.nt_loc;
        for (int it = it_lo; it < it_hi; ++it) {
          out[dst_row + (it - want.it0)] = payload[src_row + (it - s.it0)];
        }
      }
    }
    covered += static_cast<std::uint64_t>(iv_hi - iv_lo) * want.nc *
               (it_hi - it_lo);
  }
  if (covered != want.elems()) {
    throw CheckpointError(strprintf(
        "checkpoint: %s: member %d slice only %llu of %llu elements covered "
        "by shards",
        snapshot_path.c_str(), want.member,
        static_cast<unsigned long long>(covered),
        static_cast<unsigned long long>(want.elems())));
  }
  return meta.steps;
}

// --- solver glue ------------------------------------------------------------

Slice slice_of(const gyro::Simulation& sim, int member) {
  Slice s;
  s.member = member;
  s.iv0 = sim.iv_global_offset();
  s.nv_loc = sim.nv_loc();
  s.nc = sim.input().nc();
  s.it0 = sim.it_global_offset();
  s.nt_loc = sim.nt_loc();
  return s;
}

MemberMeta meta_of(const gyro::Simulation& sim) {
  MemberMeta m;
  m.tag = sim.input().tag;
  m.cmat_fingerprint = sim.input_cmat_fingerprint();
  m.nv = sim.input().nv();
  m.nc = sim.input().nc();
  m.nt = sim.input().nt();
  m.steps = sim.steps_taken();
  return m;
}

bool snapshot_rank(CheckpointWriter& writer, std::int64_t interval,
                   const gyro::Simulation& sim, int member) {
  XG_REQUIRE(sim.mode() == gyro::Mode::kReal,
             "checkpoint: real mode only (model mode carries no state)");
  return writer.add_shard(interval, slice_of(sim, member), meta_of(sim),
                          sim.state_data());
}

void restore_rank(const std::string& snapshot_path, const Manifest& manifest,
                  gyro::Simulation& sim, int member) {
  XG_REQUIRE(sim.mode() == gyro::Mode::kReal,
             "checkpoint: real mode only (model mode carries no state)");
  const Slice want = slice_of(sim, member);
  const std::int64_t steps =
      restore_slice(snapshot_path, manifest, want,
                    sim.input_cmat_fingerprint(), sim.state_data_mutable());
  sim.set_steps_taken(static_cast<int>(steps));
}

}  // namespace xg::ckpt
