// Elastic checkpoint/restart for solver state.
//
// The existing gyro/restart.hpp files are decomposition-SPECIFIC (one file
// per sim rank, readable only by the identical (pv, pt) layout), which is
// exactly what makes them useless for recovery: after a node failure the
// surviving allocation usually cannot reproduce the original layout. The
// snapshots written here are decomposition-INDEPENDENT — every shard
// carries the *global* index ranges it covers, and the reader assembles any
// target rank's slice from whichever shards overlap it — so a job
// checkpointed on k·pv·pt ranks can resume on a different rank count, a
// different (pv, pt), or even with members split back out to k = 1.
//
// Only the distributed state tensor h and the step counter are saved. cmat
// is deliberately NOT checkpointed: it is a pure function of the input
// (that is the paper's shared-tensor insight), and rebuilding it on restore
// keeps snapshots ~10× smaller than the resident footprint. A cmat
// fingerprint in every shard guards against restoring into physically
// different inputs.
//
// On-disk layout (one directory per snapshot, atomically committed):
//
//   <dir>/ckpt-00000003.tmp/      staging — ignored by readers
//   <dir>/ckpt-00000003/          committed via std::filesystem::rename
//       manifest.json             written LAST, inside the tmp dir
//       m0.v0.t0.shard            member 0, global ranges iv0=0, it0=0
//       m1.v8.t2.shard            ...
//
// A snapshot directory without a manifest is an aborted commit; a manifest
// whose shard hashes do not verify is corruption. Both are skipped by
// find_latest_valid in favor of the previous valid snapshot.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace xg::gyro {
class Simulation;
class Input;
}  // namespace xg::gyro

namespace xg::ckpt {

using cplx = std::complex<double>;

/// Structured failure for missing/truncated/corrupt/incompatible snapshots.
/// Never raised for "no snapshot exists" (that is an empty optional).
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// The global index ranges of one rank's state slice, streaming layout
/// h(nv_loc, nc, nt_loc) row-major. `member` is the index within the batch
/// being checkpointed (0 for a single simulation).
struct Slice {
  int member = 0;
  int iv0 = 0;      ///< first global velocity index
  int nv_loc = 0;   ///< velocity rows in this slice
  int nc = 0;       ///< full configuration dimension (never decomposed here)
  int it0 = 0;      ///< first global toroidal index
  int nt_loc = 0;   ///< toroidal columns in this slice

  [[nodiscard]] std::uint64_t elems() const {
    return static_cast<std::uint64_t>(nv_loc) * nc * nt_loc;
  }
};

/// Per-member metadata recorded in the manifest (consistency-checked when
/// several ranks of the same member register).
struct MemberMeta {
  std::string tag;
  std::uint64_t cmat_fingerprint = 0;
  int nv = 0, nc = 0, nt = 0;  ///< global dims
  std::int64_t steps = 0;      ///< timesteps taken at snapshot time
};

/// One shard entry of the manifest.
struct ShardInfo {
  std::string file;  ///< relative to the snapshot directory
  Slice slice;
  std::int64_t steps = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_hash = 0;  ///< FNV-1a over the complex payload
};

struct Manifest {
  static constexpr int kSchemaVersion = 1;
  std::int64_t interval = 0;  ///< completed report intervals at snapshot time
  std::vector<MemberMeta> members;  ///< indexed by member
  std::vector<ShardInfo> shards;
};

/// "ckpt-00000003" for interval 3 (fixed width so lexicographic order is
/// chronological order).
std::string snapshot_dirname(std::int64_t interval);

// --- writer -----------------------------------------------------------------

/// Host-side snapshot coordinator shared by every rank thread of one job.
/// Each rank calls add_shard() when it crosses a checkpoint boundary; the
/// LAST rank to register a given interval writes the manifest and atomically
/// renames the staging directory into place. Deliberately not an MPI
/// barrier: registration happens outside the simulated schedule, so
/// checkpointing perturbs neither the message ordering nor the virtual
/// clock. Snapshot directories older than `keep_last` committed snapshots
/// are pruned after each commit; stale *.tmp staging dirs are removed on
/// construction.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string dir, int n_ranks, int keep_last = 2);

  /// Register this rank's slice for snapshot `interval`. Returns true when
  /// this call was the n_ranks-th registration and performed the commit.
  /// Thread-safe; throws xg::ckpt::CheckpointError on I/O failure.
  bool add_shard(std::int64_t interval, const Slice& slice,
                 const MemberMeta& meta, std::span<const cplx> data);

  [[nodiscard]] std::uint64_t snapshots_committed() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  struct Pending;
  struct Impl;
  std::shared_ptr<Impl> impl_;
  std::string dir_;
};

// --- reader -----------------------------------------------------------------

struct SnapshotRef {
  std::string path;           ///< committed snapshot directory
  std::int64_t interval = 0;  ///< parsed from the directory name
};

struct ScanResult {
  std::optional<SnapshotRef> latest_valid;
  /// Committed-looking snapshots that failed validation, newest first, with
  /// the reason ("<path>: <why>"). Staging (*.tmp) dirs are not listed.
  std::vector<std::string> rejected;
};

/// Scan `dir` for snapshots, newest first; fully validate each (manifest
/// schema, shard presence, sizes, payload hashes) and return the newest one
/// that passes. An absent or empty directory yields no snapshot and no
/// rejections.
ScanResult find_latest_valid(const std::string& dir);

/// Parse + fully validate one snapshot directory. Throws CheckpointError.
Manifest validate_snapshot(const std::string& snapshot_path);

/// Parse the manifest only (no shard I/O). Throws CheckpointError.
Manifest load_manifest(const std::string& snapshot_path);

/// Fill `out` (the row-major h-slice described by `want`) from every shard
/// of want.member that overlaps it, verifying shard hashes and the cmat
/// fingerprint against `expect_cmat_fingerprint`. Throws CheckpointError on
/// corruption, incompatible grids/physics, or incomplete coverage.
/// Returns the member's step counter at snapshot time.
std::int64_t restore_slice(const std::string& snapshot_path,
                           const Manifest& manifest, const Slice& want,
                           std::uint64_t expect_cmat_fingerprint,
                           std::span<cplx> out);

// --- solver glue ------------------------------------------------------------

/// The slice of `sim`'s rank within ensemble member `member` (global index
/// offsets from the simulation's communicator layout).
Slice slice_of(const gyro::Simulation& sim, int member);

/// Manifest metadata for `sim`'s member.
MemberMeta meta_of(const gyro::Simulation& sim);

/// Register this rank's slice of `sim` with the writer (real mode only).
/// Returns true when this call committed the snapshot.
bool snapshot_rank(CheckpointWriter& writer, std::int64_t interval,
                   const gyro::Simulation& sim, int member);

/// Restore this rank's slice of `sim` from a committed snapshot (any source
/// decomposition) and set the step counter. Real mode only.
void restore_rank(const std::string& snapshot_path, const Manifest& manifest,
                  gyro::Simulation& sim, int member);

}  // namespace xg::ckpt
