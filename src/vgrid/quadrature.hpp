// Orthogonal polynomials and Gaussian quadrature for velocity space.
//
// CGYRO discretizes velocity space pseudo-spectrally: pitch angle ξ on a
// Gauss–Legendre grid (so Legendre projections used by the collision
// operator are exact) and energy on a mapped Gauss grid weighted by the
// Maxwellian. We reproduce both.
#pragma once

#include <vector>

namespace xg::vgrid {

/// Legendre polynomial P_n(x) by the stable three-term recurrence.
double legendre(int n, double x);

/// Derivative P'_n(x).
double legendre_derivative(int n, double x);

struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// n-point Gauss–Legendre rule on [-1, 1]. Nodes found by Newton iteration
/// from the Chebyshev initial guess; accurate to ~1e-15 for n ≤ 512.
QuadratureRule gauss_legendre(int n);

/// n-point Gauss–Legendre rule mapped to [a, b].
QuadratureRule gauss_legendre(int n, double a, double b);

/// Energy quadrature: nodes e_k in (0, e_max) with weights containing the
/// Maxwellian measure (2/√π)·√e·exp(−e) de, normalized so Σw = erf-truncated
/// mass ≈ 1. Built from Gauss–Legendre on a √e mapping, which clusters nodes
/// at low energy where the Maxwellian lives.
QuadratureRule energy_grid(int n, double e_max);

}  // namespace xg::vgrid
