#include "vgrid/quadrature.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace xg::vgrid {

double legendre(int n, double x) {
  XG_ASSERT(n >= 0);
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double pkm1 = 1.0;
  double pk = x;
  for (int k = 2; k <= n; ++k) {
    const double pkp1 = ((2 * k - 1) * x * pk - (k - 1) * pkm1) / k;
    pkm1 = pk;
    pk = pkp1;
  }
  return pk;
}

double legendre_derivative(int n, double x) {
  XG_ASSERT(n >= 0);
  if (n == 0) return 0.0;
  // (1-x²) P'_n = n (P_{n-1} - x P_n)
  const double denom = 1.0 - x * x;
  if (std::abs(denom) < 1e-12) {
    // endpoint limit: P'_n(±1) = ±^{n+1} n(n+1)/2
    const double sign = (x > 0) ? 1.0 : ((n % 2 == 0) ? -1.0 : 1.0);
    return sign * 0.5 * n * (n + 1);
  }
  return n * (legendre(n - 1, x) - x * legendre(n, x)) / denom;
}

QuadratureRule gauss_legendre(int n) {
  XG_REQUIRE(n >= 1, "gauss_legendre: need n >= 1");
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    // Chebyshev-based initial guess for the i-th root (descending order).
    double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    for (int iter = 0; iter < 100; ++iter) {
      const double f = legendre(n, x);
      const double fp = legendre_derivative(n, x);
      const double dx = f / fp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double fp = legendre_derivative(n, x);
    const double w = 2.0 / ((1.0 - x * x) * fp * fp);
    rule.nodes[i] = -x;          // ascending order
    rule.nodes[n - 1 - i] = x;
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n % 2 == 1) {
    rule.nodes[n / 2] = 0.0;
    const double fp = legendre_derivative(n, 0.0);
    rule.weights[n / 2] = 2.0 / (fp * fp);
  }
  return rule;
}

QuadratureRule gauss_legendre(int n, double a, double b) {
  QuadratureRule rule = gauss_legendre(n);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  for (int i = 0; i < n; ++i) {
    rule.nodes[i] = mid + half * rule.nodes[i];
    rule.weights[i] *= half;
  }
  return rule;
}

QuadratureRule energy_grid(int n, double e_max) {
  XG_REQUIRE(n >= 1 && e_max > 0.0, "energy_grid: need n >= 1 and e_max > 0");
  // Substitute e = s², de = 2s ds, s in (0, √e_max): the integrand
  // (2/√π) √e e^{-e} de becomes (4/√π) s² e^{-s²} ds — smooth, so plain
  // Gauss–Legendre in s converges spectrally.
  const QuadratureRule base = gauss_legendre(n, 0.0, std::sqrt(e_max));
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const double c = 4.0 / std::sqrt(std::numbers::pi);
  for (int i = 0; i < n; ++i) {
    const double s = base.nodes[i];
    rule.nodes[i] = s * s;
    rule.weights[i] = c * s * s * std::exp(-s * s) * base.weights[i];
  }
  return rule;
}

}  // namespace xg::vgrid
