#include "vgrid/velocity_grid.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace xg::vgrid {

VelocityGrid::VelocityGrid(const VelocityGridSpec& spec,
                           std::vector<Species> species)
    : spec_(spec), species_(std::move(species)) {
  XG_REQUIRE(spec_.n_species >= 1 && spec_.n_energy >= 1 && spec_.n_xi >= 1,
             "VelocityGrid: all dimensions must be >= 1");
  XG_REQUIRE(static_cast<int>(species_.size()) == spec_.n_species,
             strprintf("VelocityGrid: %d species params for n_species=%d",
                       int(species_.size()), spec_.n_species));
  energy_ = energy_grid(spec_.n_energy, spec_.e_max);
  xi_ = gauss_legendre(spec_.n_xi);

  // Normalize the per-species (energy × pitch) weight to unit total so the
  // discrete Maxwellian has exactly unit density regardless of e_max/n.
  double total = 0.0;
  for (int ie = 0; ie < spec_.n_energy; ++ie) {
    for (int ix = 0; ix < spec_.n_xi; ++ix) {
      total += energy_.weights[ie] * 0.5 * xi_.weights[ix];
    }
  }
  XG_ASSERT(total > 0.0);
  weight_.resize(static_cast<size_t>(nv()));
  for (int is = 0; is < spec_.n_species; ++is) {
    for (int ie = 0; ie < spec_.n_energy; ++ie) {
      for (int ix = 0; ix < spec_.n_xi; ++ix) {
        weight_[iv(is, ie, ix)] =
            energy_.weights[ie] * 0.5 * xi_.weights[ix] / total;
      }
    }
  }
}

double VelocityGrid::speed(int is, int ie) const {
  const auto& sp = species_[is];
  return std::sqrt(2.0 * energy_.nodes[ie] * sp.temperature / sp.mass);
}

double VelocityGrid::v_parallel(int iv_flat) const {
  return speed(species_of(iv_flat), energy_of(iv_flat)) * xi(xi_of(iv_flat));
}

double VelocityGrid::moment_density(std::span<const double> f, int is) const {
  XG_ASSERT(f.size() == static_cast<size_t>(nv()));
  double acc = 0.0;
  for (int ie = 0; ie < spec_.n_energy; ++ie) {
    for (int ix = 0; ix < spec_.n_xi; ++ix) {
      const int i = iv(is, ie, ix);
      acc += weight_[i] * f[i];
    }
  }
  return acc;
}

double VelocityGrid::moment_v_parallel(std::span<const double> f, int is) const {
  XG_ASSERT(f.size() == static_cast<size_t>(nv()));
  double acc = 0.0;
  for (int ie = 0; ie < spec_.n_energy; ++ie) {
    for (int ix = 0; ix < spec_.n_xi; ++ix) {
      const int i = iv(is, ie, ix);
      acc += weight_[i] * v_parallel(i) * f[i];
    }
  }
  return acc;
}

double VelocityGrid::moment_energy(std::span<const double> f, int is) const {
  XG_ASSERT(f.size() == static_cast<size_t>(nv()));
  double acc = 0.0;
  for (int ie = 0; ie < spec_.n_energy; ++ie) {
    for (int ix = 0; ix < spec_.n_xi; ++ix) {
      const int i = iv(is, ie, ix);
      acc += weight_[i] * energy_.nodes[ie] * f[i];
    }
  }
  return acc;
}

}  // namespace xg::vgrid
