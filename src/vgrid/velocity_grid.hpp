// The discrete velocity space shared by the collision operator and the
// gyrokinetic solver.
//
// A point in velocity space is (species, energy node, pitch-angle node);
// CGYRO flattens these into a single index iv with nv = n_species × n_energy
// × n_xi. The flat iv dimension is what gets split across the velocity
// communicator in the streaming phase and kept whole in the collision phase
// — i.e. it is the first two dimensions of cmat(nv, nv, nc, nt).
#pragma once

#include <span>
#include <vector>

#include "vgrid/quadrature.hpp"

namespace xg::vgrid {

struct Species {
  double charge = 1.0;   ///< Z, in units of e
  double mass = 1.0;     ///< in units of the reference (deuterium) mass
  double density = 1.0;  ///< n_s / n_ref
  double temperature = 1.0;  ///< T_s / T_ref
};

struct VelocityGridSpec {
  int n_species = 1;
  int n_energy = 8;
  int n_xi = 16;
  double e_max = 8.0;  ///< energy-grid cutoff (units of T)
};

class VelocityGrid {
 public:
  VelocityGrid(const VelocityGridSpec& spec, std::vector<Species> species);

  [[nodiscard]] int n_species() const { return spec_.n_species; }
  [[nodiscard]] int n_energy() const { return spec_.n_energy; }
  [[nodiscard]] int n_xi() const { return spec_.n_xi; }
  [[nodiscard]] int nv() const {
    return spec_.n_species * spec_.n_energy * spec_.n_xi;
  }

  /// Flat index for (species is, energy ie, pitch ix); CGYRO iv ordering.
  [[nodiscard]] int iv(int is, int ie, int ix) const {
    return (is * spec_.n_energy + ie) * spec_.n_xi + ix;
  }
  [[nodiscard]] int species_of(int iv) const {
    return iv / (spec_.n_energy * spec_.n_xi);
  }
  [[nodiscard]] int energy_of(int iv) const {
    return (iv / spec_.n_xi) % spec_.n_energy;
  }
  [[nodiscard]] int xi_of(int iv) const { return iv % spec_.n_xi; }

  [[nodiscard]] const Species& species(int is) const { return species_[is]; }
  [[nodiscard]] double energy(int ie) const { return energy_.nodes[ie]; }
  [[nodiscard]] double energy_weight(int ie) const { return energy_.weights[ie]; }
  [[nodiscard]] double xi(int ix) const { return xi_.nodes[ix]; }
  [[nodiscard]] double xi_weight(int ix) const { return xi_.weights[ix]; }

  /// Speed v/v_th,s at energy node ie: v = √(2e)·√(T_s/m_s) in thermal units.
  [[nodiscard]] double speed(int is, int ie) const;
  /// Parallel velocity v_par = v·ξ for flat index iv.
  [[nodiscard]] double v_parallel(int iv) const;

  /// Combined quadrature weight for flat iv: w_e(ie)·w_ξ(ix)/2, normalized
  /// so that Σ_{ie,ix} w = 1 for each species (∫ f_M d³v = 1).
  [[nodiscard]] double weight(int iv) const { return weight_[iv]; }

  /// Velocity-space moment Σ_iv w(iv)·phase(iv)·f(iv) over one species block.
  /// `f` spans the full nv range; only species `is` contributes.
  [[nodiscard]] double moment_density(std::span<const double> f, int is) const;
  [[nodiscard]] double moment_v_parallel(std::span<const double> f, int is) const;
  [[nodiscard]] double moment_energy(std::span<const double> f, int is) const;

 private:
  VelocityGridSpec spec_;
  std::vector<Species> species_;
  QuadratureRule energy_;
  QuadratureRule xi_;
  std::vector<double> weight_;
};

}  // namespace xg::vgrid
