#include "cluster/memory.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/format.hpp"

namespace xg::cluster {

void MemoryInventory::add(std::string name, double bytes, std::string note) {
  XG_REQUIRE(bytes >= 0.0, "MemoryInventory: negative byte count");
  entries_.push_back({std::move(name), bytes, std::move(note)});
}

double MemoryInventory::total_bytes() const {
  double t = 0.0;
  for (const auto& e : entries_) t += e.bytes;
  return t;
}

double MemoryInventory::bytes_of(const std::string& name) const {
  double t = 0.0;
  for (const auto& e : entries_) {
    if (e.name == name) t += e.bytes;
  }
  return t;
}

double MemoryInventory::total_excluding(const std::string& name) const {
  return total_bytes() - bytes_of(name);
}

std::string MemoryInventory::table() const {
  auto sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const BufferEntry& a, const BufferEntry& b) {
                     return a.bytes > b.bytes;
                   });
  std::string out = strprintf("%-28s %14s  %s\n", "buffer", "bytes", "note");
  for (const auto& e : sorted) {
    out += strprintf("%-28s %14s  %s\n", e.name.c_str(),
                     human_bytes(e.bytes).c_str(), e.note.c_str());
  }
  out += strprintf("%-28s %14s\n", "TOTAL", human_bytes(total_bytes()).c_str());
  return out;
}

Feasibility check_fit(const MemoryInventory& inventory,
                      const net::MachineSpec& spec) {
  Feasibility f;
  f.required_bytes = inventory.total_bytes();
  f.available_bytes = spec.rank_memory_bytes;
  f.fits = f.required_bytes <= f.available_bytes;
  f.utilization =
      (f.available_bytes > 0.0) ? f.required_bytes / f.available_bytes : 0.0;
  return f;
}

int min_feasible_nodes(
    int max_nodes, const std::function<net::MachineSpec(int)>& spec_at,
    const std::function<MemoryInventory(int)>& inventory_at) {
  XG_REQUIRE(max_nodes >= 1, "min_feasible_nodes: max_nodes must be >= 1");
  for (int n = 1; n <= max_nodes; ++n) {
    if (check_fit(inventory_at(n), spec_at(n)).fits) return n;
  }
  return -1;
}

}  // namespace xg::cluster
