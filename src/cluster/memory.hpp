// Per-rank memory inventories and node-count feasibility.
//
// The paper's premise is a memory argument: cmat is ~10× all other buffers
// for nl03c, so a single CGYRO simulation is forced onto ≥ 32 Frontier nodes
// even though its compute would fit on fewer. This module gives the
// bookkeeping to state such claims precisely: named per-rank buffer
// inventories, totals, and "does this decomposition fit this machine?".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simnet/machine.hpp"

namespace xg::cluster {

struct BufferEntry {
  std::string name;
  double bytes = 0.0;
  std::string note;
};

/// Named list of buffers resident on one rank.
class MemoryInventory {
 public:
  void add(std::string name, double bytes, std::string note = "");

  [[nodiscard]] double total_bytes() const;

  /// Bytes of one named buffer (0 if absent).
  [[nodiscard]] double bytes_of(const std::string& name) const;

  /// Sum of all entries except the named one — used for statements like
  /// "cmat is N× the size of everything else combined".
  [[nodiscard]] double total_excluding(const std::string& name) const;

  [[nodiscard]] const std::vector<BufferEntry>& entries() const { return entries_; }

  /// Human-readable table, largest first.
  [[nodiscard]] std::string table() const;

 private:
  std::vector<BufferEntry> entries_;
};

struct Feasibility {
  bool fits = false;
  double required_bytes = 0.0;   ///< per rank
  double available_bytes = 0.0;  ///< per rank
  double utilization = 0.0;      ///< required / available
};

/// Does a per-rank inventory fit in one rank's memory on this machine?
Feasibility check_fit(const MemoryInventory& inventory,
                      const net::MachineSpec& spec);

/// Smallest node count in [1, max_nodes] for which the per-rank inventory
/// produced by `inventory_at(n_nodes)` fits a rank of `spec_at(n_nodes)`.
/// Returns -1 if none fits. Callers supply the closure because per-rank
/// buffer sizes depend on the decomposition, which depends on node count.
int min_feasible_nodes(
    int max_nodes,
    const std::function<net::MachineSpec(int)>& spec_at,
    const std::function<MemoryInventory(int)>& inventory_at);

}  // namespace xg::cluster
