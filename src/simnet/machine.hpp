// Simulated HPC machine description and message-cost model.
//
// The paper's evaluation ran on 32 OLCF Frontier nodes. We stand a virtual
// machine in for the real one: ranks are placed onto nodes, and every
// point-to-point transfer is charged a LogGP-style cost
//
//     sender busy  : o_send + bytes / injection_bw
//     wire         : latency(src_node, dst_node)
//     receiver busy: o_recv
//
// with distinct (latency, bandwidth) for intra-node and inter-node paths.
// Collective costs are *not* modeled in closed form here — simmpi implements
// the collective algorithms over p2p messages, so their cost (and its scaling
// with participant count, the effect XGYRO exploits) emerges from this model.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace xg::net {

/// How global ranks map onto nodes. Block (the MPI launcher default, and
/// what CGYRO/XGYRO assume) keeps consecutive ranks together; round-robin
/// scatters them — useful as an ablation showing how much of XGYRO's
/// str-phase win depends on each member's nv communicator being co-located.
enum class PlacementStrategy { kBlock, kRoundRobin };

/// Static description of a machine. All rates in SI (bytes/s, s, flop/s).
struct MachineSpec {
  std::string name = "generic";
  int n_nodes = 1;
  int ranks_per_node = 8;
  PlacementStrategy placement = PlacementStrategy::kBlock;

  // Network path parameters.
  double intra_latency_s = 2.0e-6;   ///< rank↔rank on one node
  double inter_latency_s = 8.0e-6;   ///< rank↔rank across nodes
  double intra_bw_Bps = 50.0e9;      ///< per-message stream within a node
  double inter_bw_Bps = 12.5e9;      ///< per-rank NIC share across nodes when
                                     ///< ALL ranks on the node inject at once
  /// Per-rank NIC attach limit. When a communicator has fewer members per
  /// node than ranks_per_node, each member's share of the node NIC rises up
  /// to this cap (Frontier: each GCD has a ~25 GB/s path to the NICs).
  /// 0 disables the effect (effective inter bandwidth = inter_bw_Bps).
  double rank_nic_bw_Bps = 0.0;
  double send_overhead_s = 0.5e-6;   ///< CPU-side o_send
  double recv_overhead_s = 0.5e-6;   ///< CPU-side o_recv

  // Per-rank compute model (effective, application-level rates).
  double flops_per_s = 2.0e12;       ///< sustained FLOP rate
  double mem_bw_Bps = 1.0e12;        ///< sustained memory stream rate

  // Capacity, for feasibility checks.
  double rank_memory_bytes = 64.0e9;  ///< usable memory per rank (GPU/GCD)

  // Accelerator model. CGYRO's state lives on the GPU; kernels pay a launch
  // overhead, and if the MPI library is not GPU-aware every communicated
  // payload must stage through host memory (D2H before send, H2D after
  // receive) at the host-link bandwidth.
  bool has_gpu = false;          ///< state resident on an accelerator
  double kernel_launch_s = 0.0;  ///< per-kernel launch overhead
  double h2d_bw_Bps = 0.0;       ///< host↔device staging bandwidth
  bool gpu_aware_mpi = true;     ///< NIC reads/writes device memory directly

  [[nodiscard]] int total_ranks() const { return n_nodes * ranks_per_node; }
  [[nodiscard]] double node_memory_bytes() const {
    return rank_memory_bytes * ranks_per_node;
  }
};

/// Frontier-like preset: 8 GCD ranks per node, 64 GB HBM per rank,
/// Slingshot-class inter-node links. Rates are *effective* application-level
/// values, calibrated so that the nl03c-class model lands in the paper's
/// seconds-per-reporting-step regime (see bench/fig2_breakdown).
MachineSpec frontier_like(int n_nodes);

/// Small-and-slow preset used by tests: low bandwidth and high latency make
/// communication costs visible even on tiny payloads.
MachineSpec testbox(int n_nodes, int ranks_per_node);

/// Block placement of global ranks onto nodes (rank r → node r / rpn),
/// matching the natural MPI launcher layout.
class Placement {
 public:
  explicit Placement(const MachineSpec& spec) : spec_(spec) {}

  [[nodiscard]] int node_of(int rank) const {
    return spec_.placement == PlacementStrategy::kBlock
               ? rank / spec_.ranks_per_node
               : rank % spec_.n_nodes;
  }
  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  /// Wire time (after the sender hands off): latency only.
  [[nodiscard]] double wire_latency(int src, int dst) const {
    return same_node(src, dst) ? spec_.intra_latency_s : spec_.inter_latency_s;
  }

  /// Effective inter-node bandwidth when `nic_sharers` ranks of the node
  /// participate in the same communication pattern: the node NIC capacity
  /// (inter_bw × ranks_per_node) divided among the sharers, capped by the
  /// per-rank attach limit.
  [[nodiscard]] double inter_bw_effective(int nic_sharers) const {
    if (spec_.rank_nic_bw_Bps <= 0.0) return spec_.inter_bw_Bps;
    const double node_nic = spec_.inter_bw_Bps * spec_.ranks_per_node;
    const double share =
        node_nic / static_cast<double>(nic_sharers < 1 ? 1 : nic_sharers);
    return share < spec_.rank_nic_bw_Bps ? share : spec_.rank_nic_bw_Bps;
  }

  /// Time the sender spends injecting `bytes` onto the path to dst.
  /// `nic_sharers` = co-located ranks contending for the NIC (defaults to
  /// the worst case, every rank on the node).
  [[nodiscard]] double injection_time(int src, int dst, std::uint64_t bytes,
                                      int nic_sharers = -1) const {
    const double bw = same_node(src, dst)
                          ? spec_.intra_bw_Bps
                          : inter_bw_effective(nic_sharers < 0
                                                   ? spec_.ranks_per_node
                                                   : nic_sharers);
    return spec_.send_overhead_s + static_cast<double>(bytes) / bw;
  }

  [[nodiscard]] double recv_overhead() const { return spec_.recv_overhead_s; }

  /// Compute charge: max of flop-bound and memory-bound estimates.
  [[nodiscard]] double compute_time(double flops, double bytes) const {
    const double t_flop = flops / spec_.flops_per_s;
    const double t_mem = bytes / spec_.mem_bw_Bps;
    return t_flop > t_mem ? t_flop : t_mem;
  }

  /// Per-rank sustained-rate degradation: rank `rank` takes `slowdown`×
  /// longer for every compute-side charge (1.0 = nominal). Models
  /// heterogeneous or thermally-throttled nodes; the fault-injection layer
  /// uses it for straggler ranks. Multiplicative when set repeatedly.
  void set_rank_compute_scale(int rank, double slowdown);
  [[nodiscard]] double rank_compute_scale(int rank) const {
    if (compute_scale_.empty()) return 1.0;
    const auto it = compute_scale_.find(rank);
    return it == compute_scale_.end() ? 1.0 : it->second;
  }

 private:
  MachineSpec spec_;
  std::map<int, double> compute_scale_;  ///< ranks not present run at 1.0
};

}  // namespace xg::net
