#include "simnet/machine.hpp"

#include "util/error.hpp"

namespace xg::net {

MachineSpec frontier_like(int n_nodes) {
  XG_REQUIRE(n_nodes >= 1, "frontier_like: need at least one node");
  MachineSpec m;
  m.name = "frontier-like";
  m.n_nodes = n_nodes;
  m.ranks_per_node = 8;       // one rank per MI250X GCD
  m.intra_latency_s = 2.0e-6;
  m.inter_latency_s = 8.0e-6;
  m.intra_bw_Bps = 50.0e9;    // Infinity-Fabric-class
  m.inter_bw_Bps = 12.5e9;    // 4×25 GB/s NICs shared by 8 ranks
  m.rank_nic_bw_Bps = 25.0e9; // per-GCD attach limit when the node is quiet
  m.send_overhead_s = 1.0e-6;
  m.recv_overhead_s = 1.0e-6;
  m.flops_per_s = 2.0e12;     // effective application rate per GCD
  m.mem_bw_Bps = 1.0e12;      // effective HBM stream per GCD
  m.rank_memory_bytes = 64.0e9;
  m.has_gpu = true;           // one GCD per rank
  m.kernel_launch_s = 4.0e-6;
  m.h2d_bw_Bps = 36.0e9;      // CPU↔GCD Infinity Fabric share
  m.gpu_aware_mpi = true;     // Cray MPICH on Frontier is GPU-aware
  return m;
}

void Placement::set_rank_compute_scale(int rank, double slowdown) {
  XG_REQUIRE(rank >= 0, "set_rank_compute_scale: rank must be >= 0");
  XG_REQUIRE(slowdown >= 1.0, "set_rank_compute_scale: slowdown must be >= 1");
  auto [it, inserted] = compute_scale_.emplace(rank, slowdown);
  if (!inserted) it->second *= slowdown;
}

MachineSpec testbox(int n_nodes, int ranks_per_node) {
  XG_REQUIRE(n_nodes >= 1 && ranks_per_node >= 1,
             "testbox: need at least one node and one rank per node");
  MachineSpec m;
  m.name = "testbox";
  m.n_nodes = n_nodes;
  m.ranks_per_node = ranks_per_node;
  m.intra_latency_s = 1.0e-5;
  m.inter_latency_s = 1.0e-4;
  m.intra_bw_Bps = 1.0e9;
  m.inter_bw_Bps = 1.0e8;
  m.send_overhead_s = 1.0e-6;
  m.recv_overhead_s = 1.0e-6;
  m.flops_per_s = 1.0e9;
  m.mem_bw_Bps = 1.0e10;
  m.rank_memory_bytes = 4.0e9;
  return m;
}

}  // namespace xg::net
