// Reproduces the claim motivating the whole paper (its §1, citing Belli et
// al., PEARC22 [2]): "While CGYRO can linearly scale compute over multiple
// nodes, communication overheads do increase with node count."
//
// Strong-scaling sweep of ONE nl03c-like CGYRO simulation across node
// counts: per-rank compute shrinks ∝ 1/nodes while communication time per
// reporting step grows, degrading parallel efficiency — the regime that
// makes ensemble sharing attractive in the first place.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 5;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--steps" && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_out = argv[i + 1];
    }
  }
  gyro::Input in = gyro::Input::nl03c_like();
  in.n_steps_per_report = steps;

  std::printf("=== Strong scaling of one nl03c-like CGYRO simulation ===\n");
  std::printf("(paper §1 / ref [2]: compute scales, communication overhead "
              "grows with node count)\n\n");
  std::printf("%-7s %-6s %10s %10s %10s %10s %12s %11s\n", "nodes", "pv",
              "compute", "str_comm", "all_comm", "t/report", "node-seconds",
              "efficiency");

  double base_node_seconds = -1.0;
  bool comm_grows = true;
  double prev_comm = -1.0;
  telemetry::Json series = telemetry::Json::array();
  for (const int nodes : {32, 64, 128}) {
    const auto machine = perfmodel::nl03c_machine(nodes);
    gyro::Decomposition d;
    try {
      d = gyro::Decomposition::choose(in, machine.total_ranks());
    } catch (const Error&) {
      std::printf("%-7d no valid decomposition\n", nodes);
      continue;
    }
    xgyro::JobOptions opts;
    opts.mode = gyro::Mode::kModel;
    const auto res =
        xgyro::run_cgyro_job(in, machine, machine.total_ranks(), opts);
    const double total = xgyro::report_step_seconds(res);
    const double comm = xgyro::phase_seconds(res, "str_comm") +
                        xgyro::phase_seconds(res, "nl_comm") +
                        xgyro::phase_seconds(res, "coll_comm");
    const double compute = total - comm;
    const double node_seconds = total * nodes;
    if (base_node_seconds < 0) base_node_seconds = node_seconds;
    const double efficiency = base_node_seconds / node_seconds;
    std::printf("%-7d %-6d %10.3f %10.3f %10.3f %10.3f %12.3f %10.1f%%\n",
                nodes, d.pv, compute, xgyro::phase_seconds(res, "str_comm"),
                comm, total, node_seconds, 100.0 * efficiency);
    const double comm_share = comm / total;
    if (prev_comm >= 0 && comm_share <= prev_comm) comm_grows = false;
    prev_comm = comm_share;
    series.push(telemetry::Json::object()
                    .set("nodes", telemetry::Json(nodes))
                    .set("pv", telemetry::Json(d.pv))
                    .set("compute_s", telemetry::Json(compute))
                    .set("str_comm_s",
                         telemetry::Json(xgyro::phase_seconds(res, "str_comm")))
                    .set("comm_s", telemetry::Json(comm))
                    .set("t_report_s", telemetry::Json(total))
                    .set("node_seconds", telemetry::Json(node_seconds))
                    .set("efficiency", telemetry::Json(efficiency)));
  }

  std::printf("\ncommunication share grows with node count: %s\n",
              comm_grows ? "YES (as in ref [2])" : "NO");
  if (!json_out.empty()) {
    telemetry::write_json_file(
        json_out, telemetry::Json::object()
                      .set("schema", telemetry::Json("xgyro.bench.node_scaling"))
                      .set("schema_version", telemetry::Json(1))
                      .set("steps_per_report", telemetry::Json(steps))
                      .set("comm_share_grows", telemetry::Json(comm_grows))
                      .set("series", std::move(series)));
    std::printf("json series written to %s\n", json_out.c_str());
  }
  return comm_grows ? 0 : 1;
}
