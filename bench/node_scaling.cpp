// Reproduces the claim motivating the whole paper (its §1, citing Belli et
// al., PEARC22 [2]): "While CGYRO can linearly scale compute over multiple
// nodes, communication overheads do increase with node count."
//
// Strong-scaling sweep of ONE nl03c-like CGYRO simulation across node
// counts: per-rank compute shrinks ∝ 1/nodes while communication time per
// reporting step grows, degrading parallel efficiency — the regime that
// makes ensemble sharing attractive in the first place.
//
// Every node count runs twice: with the tuned collective selector (the
// default) and with the legacy fixed algorithms. The tuned run is the
// reported series; the legacy run prices what the selector buys, and at the
// largest node count — where the legacy ring AllReduce pays 2(P−1) latency
// rounds — the tuned efficiency must strictly beat it (exit gate).
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "simmpi/coll.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

namespace {

struct Point {
  double total = 0.0;
  double str_comm = 0.0;
  double comm = 0.0;
};

Point run_point(const xg::gyro::Input& in, const xg::net::MachineSpec& machine,
                const xg::mpi::CollSelector& selector) {
  xg::xgyro::JobOptions opts;
  opts.mode = xg::gyro::Mode::kModel;
  opts.coll_selector = std::shared_ptr<const xg::mpi::CollSelector>(
      std::shared_ptr<void>(), &selector);
  const auto res =
      xg::xgyro::run_cgyro_job(in, machine, machine.total_ranks(), opts);
  Point p;
  p.total = xg::xgyro::report_step_seconds(res);
  p.str_comm = xg::xgyro::phase_seconds(res, "str_comm");
  p.comm = p.str_comm + xg::xgyro::phase_seconds(res, "nl_comm") +
           xg::xgyro::phase_seconds(res, "coll_comm");
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 5;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--steps" && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_out = argv[i + 1];
    }
  }
  gyro::Input in = gyro::Input::nl03c_like();
  in.n_steps_per_report = steps;
  // Doubling the energy grid (nv = 576 → 1152) keeps the case nl03c-shaped
  // while giving the velocity dimension enough power-of-two headroom
  // (pv = 128) to decompose onto 2048 ranks — the sweep's 256-node point.
  in.n_energy = 16;

  std::printf("=== Strong scaling of one nl03c-like CGYRO simulation ===\n");
  std::printf("(paper §1 / ref [2]: compute scales, communication overhead "
              "grows with node count)\n\n");
  std::printf("%-7s %-6s %10s %10s %10s %10s %12s %11s %11s\n", "nodes", "pv",
              "compute", "str_comm", "all_comm", "t/report", "node-seconds",
              "efficiency", "vs legacy");

  double base_node_seconds = -1.0;
  bool comm_grows = true;
  bool tuned_wins_largest = false;
  double prev_comm = -1.0;
  telemetry::Json series = telemetry::Json::array();
  const int largest = 256;
  for (const int nodes : {32, 64, 128, largest}) {
    const auto machine = perfmodel::nl03c_machine(nodes);
    gyro::Decomposition d;
    try {
      d = gyro::Decomposition::choose(in, machine.total_ranks());
    } catch (const Error&) {
      std::printf("%-7d no valid decomposition\n", nodes);
      continue;
    }
    const Point tuned = run_point(in, machine, mpi::CollSelector::tuned());
    const Point legacy = run_point(in, machine, mpi::CollSelector::legacy());
    const double compute = tuned.total - tuned.comm;
    const double node_seconds = tuned.total * nodes;
    if (base_node_seconds < 0) base_node_seconds = node_seconds;
    const double efficiency = base_node_seconds / node_seconds;
    const double legacy_efficiency =
        base_node_seconds / (legacy.total * nodes);
    const double gain = tuned.total > 0.0 ? legacy.total / tuned.total : 0.0;
    if (nodes == largest && tuned.total < legacy.total) {
      tuned_wins_largest = true;
    }
    std::printf(
        "%-7d %-6d %10.3f %10.3f %10.3f %10.3f %12.3f %10.1f%% %10.2fx\n",
        nodes, d.pv, compute, tuned.str_comm, tuned.comm, tuned.total,
        node_seconds, 100.0 * efficiency, gain);
    const double comm_share = tuned.comm / tuned.total;
    if (prev_comm >= 0 && comm_share <= prev_comm) comm_grows = false;
    prev_comm = comm_share;
    series.push(telemetry::Json::object()
                    .set("nodes", telemetry::Json(nodes))
                    .set("pv", telemetry::Json(d.pv))
                    .set("compute_s", telemetry::Json(compute))
                    .set("str_comm_s", telemetry::Json(tuned.str_comm))
                    .set("comm_s", telemetry::Json(tuned.comm))
                    .set("t_report_s", telemetry::Json(tuned.total))
                    .set("node_seconds", telemetry::Json(node_seconds))
                    .set("efficiency", telemetry::Json(efficiency))
                    .set("legacy_t_report_s", telemetry::Json(legacy.total))
                    .set("legacy_efficiency",
                         telemetry::Json(legacy_efficiency))
                    .set("selector_gain", telemetry::Json(gain)));
  }

  std::printf("\ncommunication share grows with node count: %s\n",
              comm_grows ? "YES (as in ref [2])" : "NO");
  std::printf("tuned selector strictly beats legacy at %d nodes: %s\n",
              largest, tuned_wins_largest ? "YES" : "NO");
  if (!json_out.empty()) {
    telemetry::write_json_file(
        json_out, telemetry::Json::object()
                      .set("schema", telemetry::Json("xgyro.bench.node_scaling"))
                      .set("schema_version", telemetry::Json(2))
                      .set("steps_per_report", telemetry::Json(steps))
                      .set("comm_share_grows", telemetry::Json(comm_grows))
                      .set("tuned_wins_largest",
                           telemetry::Json(tuned_wins_largest))
                      .set("series", std::move(series)));
    std::printf("json series written to %s\n", json_out.c_str());
  }
  return comm_grows && tuned_wins_largest ? 0 : 1;
}
