// Ablation behind the paper's §1 remark that the precomputed cmat "trades
// memory intensity for lower compute cost ... allows for order of magnitude
// compute speedup in the collision step".
//
// Compares, per collision step and cell:
//   (a) precomputed-cmat path: one dense nv×nv fp32 mat-vec (CGYRO/XGYRO),
//   (b) on-the-fly path: factor (I − Δt/2 C) and solve each step — what a
//       memory-frugal implementation would have to do.
// These are real host-side kernel timings (google-benchmark wall time).
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "collision/operator.hpp"
#include "collision/tensor.hpp"
#include "la/lu.hpp"
#include "util/rng.hpp"
#include "vgrid/velocity_grid.hpp"

namespace {

using xg::collision::cplx;

xg::vgrid::VelocityGrid grid_for_nv(int n_xi) {
  xg::vgrid::VelocityGridSpec spec;
  spec.n_species = 2;
  spec.n_energy = 6;
  spec.n_xi = n_xi;
  std::vector<xg::vgrid::Species> sp(2);
  sp[1].mass = 2.72e-4;
  sp[1].charge = -1.0;
  return xg::vgrid::VelocityGrid(spec, std::move(sp));
}

std::vector<cplx> random_state(int nv) {
  xg::Rng rng(7);
  std::vector<cplx> h(static_cast<size_t>(nv));
  for (auto& v : h) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return h;
}

void BM_PrecomputedCmatApply(benchmark::State& state) {
  const auto grid = grid_for_nv(static_cast<int>(state.range(0)));
  const int nv = grid.nv();
  xg::collision::CollisionParams params;
  const auto scattering = xg::collision::build_scattering_operator(grid, params);
  const auto rates = xg::collision::gyro_diffusion_rates(grid, params, 1.0);
  const auto a = xg::collision::build_implicit_step_matrix(
      xg::collision::build_cell_operator(scattering, rates), 0.01);
  xg::collision::CollisionTensor cmat(nv, 1);
  cmat.set_cell(0, a);
  auto h = random_state(nv);
  for (auto _ : state) {
    cmat.apply_in_place(0, h);
    benchmark::DoNotOptimize(h.data());
  }
  state.counters["nv"] = nv;
  state.SetItemsProcessed(state.iterations());
}

void BM_OnTheFlyImplicitSolve(benchmark::State& state) {
  const auto grid = grid_for_nv(static_cast<int>(state.range(0)));
  const int nv = grid.nv();
  xg::collision::CollisionParams params;
  const auto scattering = xg::collision::build_scattering_operator(grid, params);
  const auto rates = xg::collision::gyro_diffusion_rates(grid, params, 1.0);
  const auto c = xg::collision::build_cell_operator(scattering, rates);
  auto h = random_state(nv);
  std::vector<double> re(nv), im(nv);
  for (auto _ : state) {
    // (I − Δt/2 C) x = (I + Δt/2 C) h, re-factored every step (no storage).
    xg::la::MatrixD lhs(nv, nv);
    std::vector<double> rhs_re(nv, 0.0), rhs_im(nv, 0.0);
    for (int i = 0; i < nv; ++i) {
      for (int j = 0; j < nv; ++j) {
        lhs(i, j) = -0.005 * c(i, j);
        rhs_re[i] += (0.005 * c(i, j) + (i == j ? 1.0 : 0.0)) * h[j].real();
        rhs_im[i] += (0.005 * c(i, j) + (i == j ? 1.0 : 0.0)) * h[j].imag();
      }
      lhs(i, i) += 1.0;
    }
    const xg::la::LuFactorization lu(std::move(lhs));
    re = lu.solve(rhs_re);
    im = lu.solve(rhs_im);
    for (int i = 0; i < nv; ++i) h[i] = {re[i], im[i]};
    benchmark::DoNotOptimize(h.data());
  }
  state.counters["nv"] = nv;
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

// range arg = n_xi; nv = 2 species × 6 energies × n_xi
BENCHMARK(BM_PrecomputedCmatApply)->Arg(4)->Arg(8)->Arg(16)->Arg(24);
BENCHMARK(BM_OnTheFlyImplicitSolve)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

BENCHMARK_MAIN();
