// Ablation: communication/computation overlap on the transpose+work pattern.
//
// CGYRO's production configuration overlaps its AllToAll transposes with
// per-block computation (one of the optimizations that keeps the nl phase
// affordable on Frontier). The simulated runtime models this through
// nonblocking sends on a per-rank NIC timeline: this bench quantifies how
// much of the transpose cost the overlap hides, across block sizes and
// compute intensities.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

namespace {

using xg::mpi::Proc;
using xg::mpi::Request;

/// Blocking: full AllToAll, then compute every block.
double run_sequential(const xg::net::MachineSpec& spec, int p,
                      std::uint64_t block_bytes, double flops_per_block) {
  const auto res = xg::mpi::run_simulation(spec, p, [&](Proc& proc) {
    auto world = proc.world();
    world.alltoall_virtual(block_bytes);
    proc.compute(flops_per_block * p);
  });
  return res.makespan_s;
}

/// Pipelined: post all sends/receives, compute the local block first, then
/// process each incoming block as it completes.
double run_overlapped(const xg::net::MachineSpec& spec, int p,
                      std::uint64_t block_bytes, double flops_per_block) {
  const auto res = xg::mpi::run_simulation(spec, p, [&](Proc& proc) {
    auto world = proc.world();
    const int r = world.rank();
    std::vector<Request> sends, recvs;
    for (int step = 1; step < p; ++step) {
      sends.push_back(world.isend_virtual(block_bytes, (r + step) % p, step));
      recvs.push_back(world.irecv_virtual(block_bytes, (r - step + p) % p, step));
    }
    proc.compute(flops_per_block);  // own block, free overlap
    for (auto& req : recvs) {
      world.wait(req);
      proc.compute(flops_per_block);
    }
    world.waitall(std::span<Request>(sends));
  });
  return res.makespan_s;
}

}  // namespace

int main() {
  using namespace xg;
  std::printf("=== Transpose/compute overlap ablation (simulated Frontier) ===\n\n");
  std::printf("%-6s %-12s %-14s %12s %12s %10s\n", "ranks", "block", "flops/blk",
              "blocking[ms]", "overlap[ms]", "saved");

  bool ever_saved = false;
  for (const int p : {8, 16}) {
    const auto spec = net::frontier_like((p + 7) / 8);
    for (const std::uint64_t block : {std::uint64_t{256} * 1024,
                                      std::uint64_t{4} * 1024 * 1024}) {
      for (const double flops : {1e7, 1e8}) {
        const double seq = run_sequential(spec, p, block, flops);
        const double ovl = run_overlapped(spec, p, block, flops);
        const double saved = (seq - ovl) / seq;
        ever_saved |= saved > 0.05;
        std::printf("%-6d %-12s %-14.0e %12.3f %12.3f %9.1f%%\n", p,
                    human_bytes(double(block)).c_str(), flops, seq * 1e3,
                    ovl * 1e3, 100.0 * saved);
      }
    }
  }
  std::printf("\noverlap hides part of the transpose whenever per-block "
              "compute is comparable to per-block transfer time.\n");

  // --- solver-level: the COLL_PIPELINE input knob on the nl03c point -------
  std::printf("\n--- CGYRO nl03c-like collision phase, COLL_PIPELINE sweep "
              "(32 nodes, 5 steps) ---\n");
  std::printf("%-8s %12s %12s %12s\n", "chunks", "coll", "coll_comm",
              "coll total");
  xg::gyro::Input in = xg::gyro::Input::nl03c_like();
  in.n_steps_per_report = 5;
  const auto machine = xg::perfmodel::nl03c_machine(32);
  double unpiped = 0;
  for (const int chunks : {1, 4, 16}) {
    in.coll_pipeline_chunks = chunks;
    xg::xgyro::JobOptions opts;
    opts.mode = xg::gyro::Mode::kModel;
    const auto res =
        xg::xgyro::run_cgyro_job(in, machine, machine.total_ranks(), opts);
    const double coll = xg::xgyro::phase_seconds(res, "coll");
    const double comm = xg::xgyro::phase_seconds(res, "coll_comm");
    if (chunks == 1) unpiped = coll + comm;
    std::printf("%-8d %12.3f %12.3f %12.3f\n", chunks, coll, comm, coll + comm);
  }
  std::printf("(unpipelined coll total %.3f s; pipelining hides the kernels "
              "behind the transpose)\n", unpiped);
  return ever_saved ? 0 : 1;
}
