// Reproduces Figure 2: per-reporting-step runtime breakdown of 8 nl03c-like
// variants on 32 Frontier-like nodes — run sequentially with CGYRO (each
// variant alone on all 32 nodes) vs as one XGYRO ensemble sharing cmat.
//
// Paper numbers (seconds per reporting step, t = 81):
//   CGYRO sum : total 375, str communication 145
//   XGYRO     : total 250, str communication  33   →  1.5× speedup
//
// Absolute seconds here come from the reduced-scale nl03c-like case on the
// simulated machine (see DESIGN.md §2); the comparison targets are the
// *shape*: XGYRO wins, the win is concentrated in str_comm, compute phases
// are work-conserving.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "analysis/critical_path.hpp"
#include "analysis/divergence.hpp"
#include "analysis/waitwork.hpp"
#include "gyro/simulation.hpp"
#include "gyro/timing_log.hpp"
#include "perfmodel/perfmodel.hpp"
#include "simmpi/traffic.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  // --steps N lets CI keep this quick; the default matches the preset's
  // 100-step reporting interval at a wall cost of a few minutes of DES.
  // --artifacts DIR writes out.cgyro.timing / out.xgyro.timing files, the
  // same kind of artifact the paper published as its data (reference [5]).
  // --check-analysis runs only the XGYRO job (traced) and verifies the
  // analysis engine on this configuration: the critical path must tile the
  // makespan within 1% and the perf-model divergence gate must pass at the
  // default tolerance.
  int steps = 25;
  std::string artifacts;
  bool check_analysis = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check-analysis") check_analysis = true;
    if (i >= argc - 1) continue;
    if (std::string(argv[i]) == "--steps") steps = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--artifacts") artifacts = argv[i + 1];
  }

  gyro::Input base = gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  const int k = 8;
  const int nodes = 32;
  const auto machine = perfmodel::nl03c_machine(nodes);
  const int total_ranks = machine.total_ranks();  // 256

  const auto ensemble = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        // The paper's "8 variants": a gradient-drive scan, cmat-safe.
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
        in.tag = strprintf("nl03c_v%d", i);
      });

  if (check_analysis) {
    std::printf("=== Fig. 2 configuration: analysis engine check ===\n");
    std::printf("case: nl03c-like, k=%d, %d nodes (%d ranks), %d "
                "steps/report\n\n",
                k, nodes, total_ranks, steps);
    xgyro::JobOptions aopts;
    aopts.mode = gyro::Mode::kModel;
    aopts.enable_trace = true;
    const auto run =
        xgyro::run_xgyro_job(ensemble, machine, total_ranks / k, aopts);

    const auto cpath = analysis::compute_critical_path(run);
    std::printf("%s\n", analysis::format_critical_path(cpath).c_str());
    const double coverage_err =
        run.makespan_s > 0.0
            ? std::fabs(cpath.covered_s - run.makespan_s) / run.makespan_s
            : 1.0;
    const bool coverage_ok = coverage_err <= 0.01;
    std::printf("critical-path coverage: |%.9f - %.9f| / makespan = %.3e "
                "(must be <= 1%%): %s\n",
                cpath.covered_s, run.makespan_s, coverage_err,
                coverage_ok ? "PASS" : "FAIL");

    const auto waitwork = analysis::analyze_waitwork(run);
    std::printf("\n%s", analysis::format_waitwork(waitwork).c_str());

    const auto decomp = gyro::Decomposition::choose(base, total_ranks / k, k);
    const auto div =
        analysis::check_divergence(run, base, decomp, k, machine, 1);
    std::printf("\n%s", analysis::format_divergence(div).c_str());

    const bool ok = coverage_ok && div.pass;
    std::printf("\nanalysis check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("=== Fig. 2: CGYRO sequential vs XGYRO ensemble ===\n");
  std::printf("case: nl03c-like (nc=%d nv=%d nt=%d), %d variants, %d nodes "
              "(%d ranks), %d steps/report\n\n",
              base.nc(), base.nv(), base.nt(), k, nodes, total_ranks, steps);

  xgyro::JobOptions opts;
  opts.mode = gyro::Mode::kModel;
  opts.enable_traffic = true;

  // One CGYRO job = one variant on all 32 nodes. All variants share the
  // communication/compute schedule (drives are sweep-safe), so one DES run
  // stands for each of the 8 sequential jobs.
  const auto cgyro = xgyro::run_cgyro_job(base, machine, total_ranks, opts);
  // The XGYRO job runs all 8 at once, 32 ranks each, shared cmat.
  const auto xgyro = xgyro::run_xgyro_job(ensemble, machine, total_ranks / k, opts);

  const auto& phases = xgyro::solver_phases();
  std::printf("%-10s %14s %14s %10s\n", "phase", "CGYRO sum [s]", "XGYRO [s]",
              "ratio");
  double cg_total = 0, xg_total = 0;
  for (const auto& ph : phases) {
    const double cg = k * xgyro::phase_seconds(cgyro, ph);
    const double xg = xgyro::phase_seconds(xgyro, ph);
    cg_total += cg;
    xg_total += xg;
    std::printf("%-10s %14.3f %14.3f %9.2fx\n", ph.c_str(), cg, xg,
                xg > 0 ? cg / xg : 0.0);
  }
  std::printf("%-10s %14.3f %14.3f %9.2fx\n", "TOTAL", cg_total, xg_total,
              cg_total / xg_total);

  const double cg_str = k * xgyro::phase_seconds(cgyro, "str_comm");
  const double xg_str = xgyro::phase_seconds(xgyro, "str_comm");
  std::printf("\npaper:   total 375 s vs 250 s (1.50x), str_comm 145 s vs 33 s "
              "(4.39x)\n");
  std::printf("measured: total %.3f s vs %.3f s (%.2fx), str_comm %.3f s vs "
              "%.3f s (%.2fx)\n",
              cg_total, xg_total, cg_total / xg_total, cg_str, xg_str,
              xg_str > 0 ? cg_str / xg_str : 0.0);

  // Where did the str bytes go? XGYRO relocates them onto intra-node fabric.
  const net::Placement place(machine);
  const auto cg_traffic = mpi::summarize_traffic_phase(cgyro, place, "str_comm");
  const auto xg_traffic = mpi::summarize_traffic_phase(xgyro, place, "str_comm");
  std::printf("\nstr_comm traffic (one job): CGYRO %s inter / %s intra "
              "(%.0f%% inter);  XGYRO %s inter / %s intra (%.0f%% inter)\n",
              human_bytes(double(cg_traffic.inter_bytes)).c_str(),
              human_bytes(double(cg_traffic.intra_bytes)).c_str(),
              100.0 * cg_traffic.inter_fraction(),
              human_bytes(double(xg_traffic.inter_bytes)).c_str(),
              human_bytes(double(xg_traffic.intra_bytes)).c_str(),
              100.0 * xg_traffic.inter_fraction());

  if (!artifacts.empty()) {
    std::filesystem::create_directories(artifacts);
    gyro::write_timing_log(artifacts + "/out.cgyro.timing",
                           gyro::timing_rows(cgyro, phases), cgyro.makespan_s);
    gyro::write_timing_log(artifacts + "/out.xgyro.timing",
                           gyro::timing_rows(xgyro, phases), xgyro.makespan_s);
    std::printf("timing logs written to %s/ (cf. the paper's published log "
                "archive, reference [5])\n",
                artifacts.c_str());
  }

  const bool shape_ok = xg_total < cg_total && xg_str < cg_str;
  std::printf("shape check (XGYRO wins, driven by str_comm): %s\n",
              shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
