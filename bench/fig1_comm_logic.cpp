// Reproduces Figure 1: CGYRO's str/coll communication logic.
//
// The figure is a schematic; its content is (a) which communicator each
// collective runs on, (b) that the nv communicator is REUSED for both the
// field/upwind AllReduces of the str phase and the str↔coll AllToAll
// transpose, and (c) the participant counts. We regenerate that content as
// a structured dump of the traced collective schedule of one timestep.
#include <cstdio>
#include <string_view>
#include <map>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

int main(int argc, char** argv) {
  // --smoke: suppress the tables, keep the pass/fail verdict — used by the
  // ctest registrations so comm-logic regressions fail tier-1.
  const bool smoke =
      argc > 1 && std::string_view(argv[1]) == "--smoke";
  using namespace xg;
  gyro::Input in = gyro::Input::small_test(2);
  in.n_steps_per_report = 1;

  const int nranks = 8;  // pv=2, pt=4
  xgyro::JobOptions opts;
  opts.mode = gyro::Mode::kModel;
  opts.enable_trace = true;
  const auto res = xgyro::run_cgyro_job(in, net::testbox(1, nranks), nranks, opts);

  if (!smoke) {
  std::printf("=== Fig. 1: CGYRO str and coll communication logic ===\n");
    std::printf("one simulation, %d ranks (pv=2, pt=4); one reporting step\n\n",
                nranks);
  }

  // Aggregate the trace: (phase, kind, comm, participants) -> count.
  struct Key {
    std::string phase, kind, comm;
    int participants;
    std::uint64_t context;
    bool operator<(const Key& o) const {
      return std::tie(phase, kind, comm, participants, context) <
             std::tie(o.phase, o.kind, o.comm, o.participants, o.context);
    }
  };
  std::map<Key, int> schedule;
  std::map<std::string, std::uint64_t> comm_context;
  for (const auto& e : res.trace) {
    if (e.phase == "init") continue;
    schedule[{e.phase, mpi::trace_kind_name(e.kind), e.comm_label,
              e.participants, e.comm_context}]++;
    comm_context[e.comm_label] = e.comm_context;
  }
  if (!smoke) {
  std::printf("%-10s %-10s %-14s %12s %8s\n", "phase", "collective",
                "communicator", "participants", "count");
    for (const auto& [key, count] : schedule) {
      std::printf("%-10s %-10s %-14s %12d %8d\n", key.phase.c_str(),
                  key.kind.c_str(), key.comm.c_str(), key.participants, count);
    }
  }

  // The figure's central fact: the SAME communicator carries the str-phase
  // AllReduces and the str<->coll transpose.
  std::uint64_t allreduce_ctx = 0, alltoall_ctx = 1;
  for (const auto& [key, count] : schedule) {
    if (key.phase == "str_comm" && key.kind == std::string("AllReduce")) {
      allreduce_ctx = key.context;
    }
    if (key.phase == "coll_comm" && key.kind == std::string("AllToAll")) {
      alltoall_ctx = key.context;
    }
  }
  const bool reused = (allreduce_ctx == alltoall_ctx);
  std::printf("\nnv communicator reused for str AllReduce AND coll transpose: "
              "%s (context %016llx)\n",
              reused ? "YES (as in Fig. 1)" : "NO",
              static_cast<unsigned long long>(allreduce_ctx));
  return reused ? 0 : 1;
}
