// Reproduces the §2.1 scaling claim: "the overall cost of AllReduce is
// proportional with the number of participating processes, [so increasing]
// the number of simulations per ensemble" shrinks communication cost.
//
// Sweep k ∈ {1, 2, 4, 8} members on a fixed 32-node allocation and report
// per-reporting-step phase times from the DES (model mode). k=1 is the
// CGYRO-equivalent layout run through XGYRO (sanity anchor); the campaign
// cost to finish 8 simulations is (8/k) sequential ensemble jobs.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 10;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--steps" && i + 1 < argc) {
      steps = std::atoi(argv[i + 1]);
    } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_out = argv[i + 1];
    }
  }
  gyro::Input base = gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  const int total_sims = 8;
  const auto machine = perfmodel::nl03c_machine(32);
  const int total_ranks = machine.total_ranks();

  std::printf("=== Ensemble-size scaling on 32 nodes (%d steps/report) ===\n\n",
              steps);
  std::printf("%-4s %-6s %10s %10s %10s %10s %12s %8s\n", "k", "pv",
              "str_comm", "coll_comm", "compute", "t/report",
              "campaign(8)", "fits?");

  double campaign_k1 = 0.0;
  telemetry::Json series = telemetry::Json::array();
  for (const int k : {1, 2, 4, 8}) {
    const int ranks_per_sim = total_ranks / k;
    auto ensemble = xgyro::EnsembleInput::sweep(
        base, k, [](gyro::Input& in, int i) {
          in.species[0].a_ln_t = 2.0 + 0.25 * i;
        });
    const auto plan = perfmodel::plan_xgyro(base, k, machine);
    xgyro::JobOptions opts;
    opts.mode = gyro::Mode::kModel;
    const auto res = xgyro::run_xgyro_job(ensemble, machine, ranks_per_sim, opts);
    const double str_comm = xgyro::phase_seconds(res, "str_comm");
    const double coll_comm = xgyro::phase_seconds(res, "coll_comm");
    const double total = xgyro::report_step_seconds(res);
    const double compute = total - str_comm - coll_comm -
                           xgyro::phase_seconds(res, "nl_comm");
    const double campaign = total * (total_sims / k);
    if (k == 1) campaign_k1 = campaign;
    std::printf("%-4d %-6d %10.3f %10.3f %10.3f %10.3f %12.3f %8s\n", k,
                plan.decomp.pv, str_comm, coll_comm, compute, total, campaign,
                plan.fit.fits ? "yes" : "NO");
    series.push(telemetry::Json::object()
                    .set("k", telemetry::Json(k))
                    .set("pv", telemetry::Json(plan.decomp.pv))
                    .set("str_comm_s", telemetry::Json(str_comm))
                    .set("coll_comm_s", telemetry::Json(coll_comm))
                    .set("compute_s", telemetry::Json(compute))
                    .set("t_report_s", telemetry::Json(total))
                    .set("campaign_s", telemetry::Json(campaign))
                    .set("fits", telemetry::Json(plan.fit.fits)));
  }
  std::printf("\ncampaign speedup k=8 vs k=1 should land near the paper's "
              "1.5x (measured above; k=1 campaign %.3fs).\n", campaign_k1);
  if (!json_out.empty()) {
    telemetry::write_json_file(
        json_out,
        telemetry::Json::object()
            .set("schema", telemetry::Json("xgyro.bench.ensemble_scaling"))
            .set("schema_version", telemetry::Json(1))
            .set("steps_per_report", telemetry::Json(steps))
            .set("total_sims", telemetry::Json(total_sims))
            .set("series", std::move(series)));
    std::printf("json series written to %s\n", json_out.c_str());
  }
  return 0;
}
