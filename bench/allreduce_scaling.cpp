// AllReduce scaling with the tuned collective selector vs the legacy fixed
// algorithms (paper §2.1: AllReduce cost grows with participating
// processes; the selector is how we keep that growth logarithmic).
//
// For each node count the DES runs one world-sized AllReduce at the
// field-solve payload twice — once with the tuned decision table (the
// default selector) and once with the legacy recursive-doubling/ring
// crossover — and reports both virtual times plus the speedup. The tuned
// time must never lose, and must strictly win at the largest node count
// (that's the bandwidth-bound regime where the legacy ring's 2(P−1) rounds
// drown in latency).
//
//   ./bench/allreduce_scaling [--json FILE] [--smoke]
//
// --smoke shrinks the sweep to one small cell and keeps the same gate.
// Exit status: 0 pass, 1 gate failure.
#include <cstdio>
#include <cstring>
#include <string>

#include "simmpi/coll.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simnet/machine.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"

namespace {

/// DES virtual time of one world AllReduce under `selector`.
double time_allreduce(int nodes, std::uint64_t bytes,
                      const xg::mpi::CollSelector& selector) {
  const auto spec = xg::net::frontier_like(nodes);
  xg::mpi::RuntimeOptions ropts;
  ropts.coll_selector = std::shared_ptr<const xg::mpi::CollSelector>(
      std::shared_ptr<void>(), &selector);
  const auto res = xg::mpi::run_simulation(
      spec, spec.total_ranks(),
      [&](xg::mpi::Proc& p) { p.world().allreduce_virtual(bytes); }, ropts);
  return res.makespan_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::string json_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // 512 KiB is the nl03c-like field payload (nc · nt/pt · 16 bytes); the
  // smoke cell uses 1 MiB on 4 nodes where the legacy ring already loses.
  std::vector<int> node_counts = {32, 64, 128, 256};
  std::uint64_t bytes = 512 * 1024;
  if (smoke) {
    node_counts = {4};
    bytes = 1024 * 1024;
  }

  std::printf("=== World AllReduce, tuned selector vs legacy algorithms ===\n");
  std::printf("%-7s %8s %12s %12s %12s %9s\n", "nodes", "ranks", "payload",
              "tuned_us", "legacy_us", "speedup");

  bool pass = true;
  double last_speedup = 0.0;
  telemetry::Json series = telemetry::Json::array();
  for (const int nodes : node_counts) {
    const int ranks = net::frontier_like(nodes).total_ranks();
    const double tuned = time_allreduce(nodes, bytes, mpi::CollSelector::tuned());
    const double legacy =
        time_allreduce(nodes, bytes, mpi::CollSelector::legacy());
    const double speedup = tuned > 0.0 ? legacy / tuned : 0.0;
    last_speedup = speedup;
    if (tuned > legacy) pass = false;  // tuned must never lose
    std::printf("%-7d %8d %9llu B %12.3f %12.3f %8.2fx\n", nodes, ranks,
                static_cast<unsigned long long>(bytes), tuned * 1e6,
                legacy * 1e6, speedup);
    series.push(telemetry::Json::object()
                    .set("nodes", telemetry::Json(nodes))
                    .set("participants", telemetry::Json(ranks))
                    .set("bytes", telemetry::Json(bytes))
                    .set("tuned_us", telemetry::Json(tuned * 1e6))
                    .set("legacy_us", telemetry::Json(legacy * 1e6))
                    .set("speedup", telemetry::Json(speedup)));
  }
  // The largest point is the regime the selector exists for: a strict win
  // there is the gate, not a nice-to-have.
  if (last_speedup <= 1.0) pass = false;

  std::printf("\ntuned selector %s (largest sweep point: %.2fx over "
              "legacy)\n",
              pass ? "PASSES" : "FAILS", last_speedup);
  if (!json_out.empty()) {
    telemetry::write_json_file(
        json_out,
        telemetry::Json::object()
            .set("schema", telemetry::Json("xgyro.bench.allreduce_scaling"))
            .set("schema_version", telemetry::Json(1))
            .set("pass", telemetry::Json(pass))
            .set("series", std::move(series)));
    std::printf("json series written to %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
