// Micro-benchmark behind the paper's §2.1 argument: AllReduce cost vs the
// number of participating processes, at the field-solve payload size, on
// the simulated Frontier-like network. Reports the DES virtual time (the
// modeled quantity) as a counter alongside the host-side wall time of the
// simulation itself.
#include <benchmark/benchmark.h>

#include "perfmodel/perfmodel.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simnet/machine.hpp"

namespace {

void BM_AllReduceParticipants(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(1));
  const auto spec = xg::net::frontier_like((participants + 7) / 8);
  // Note: no DoNotOptimize(virt) — this benchmark library's GCC inline-asm
  // constraint ("+m,r") corrupts doubles at -O2, and the DES run has thread
  // side effects the optimizer cannot elide anyway.
  double virt = 0.0;
  for (auto _ : state) {
    const auto res = xg::mpi::run_simulation(
        spec, participants,
        [&](xg::mpi::Proc& p) { p.world().allreduce_virtual(bytes); });
    virt = res.makespan_s;
  }
  state.counters["virtual_us"] = virt * 1e6;
  state.counters["virtual_us_per_rank"] = virt * 1e6 / participants;
  state.counters["closedform_us"] =
      xg::perfmodel::estimate_allreduce(spec, participants, bytes,
                                        participants > 8) * 1e6;
}

}  // namespace

BENCHMARK(BM_AllReduceParticipants)
    ->ArgsProduct({{2, 4, 8, 16, 32, 64}, {16 * 1024, 512 * 1024}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
