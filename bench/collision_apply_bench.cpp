// Microbenchmark for the batched shared-cmat collision kernel.
//
// The paper's sharing of cmat across k ensemble members makes the collision
// step a mat-mat (one nv×nv matrix × k right-hand sides per cell) instead of
// k mat-vecs. This bench measures that arithmetic-intensity win directly:
// sim-cell applies per second for the scalar CollisionTensor::apply path
// (each member applied separately, cmat streamed k times per cell) vs the
// batched apply_batch panel path (cmat streamed once per cell), at
// k ∈ {1, 4, 16}. Emits one JSON document on stdout — the BENCH_*.json
// trajectory's collision-kernel series.
//
// `--smoke` runs a reduced shape, verifies batch/scalar bit-exactness, and
// exits nonzero on mismatch; it is registered as a ctest so the batched
// kernel cannot silently regress.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "collision/operator.hpp"
#include "collision/tensor.hpp"
#include "util/rng.hpp"
#include "vgrid/velocity_grid.hpp"

namespace {

using xg::collision::cplx;

xg::vgrid::VelocityGrid make_grid(int n_energy, int n_xi) {
  xg::vgrid::VelocityGridSpec spec;
  spec.n_species = 2;
  spec.n_energy = n_energy;
  spec.n_xi = n_xi;
  std::vector<xg::vgrid::Species> sp(2);
  sp[1].mass = 2.72e-4;
  sp[1].charge = -1.0;
  return xg::vgrid::VelocityGrid(spec, std::move(sp));
}

/// cmat stand-in with one genuinely built cell replicated: apply cost does
/// not depend on the values, and this keeps setup off the critical path.
xg::collision::CollisionTensor make_tensor(const xg::vgrid::VelocityGrid& g,
                                           int n_cells) {
  xg::collision::CollisionParams params;
  const auto a = xg::collision::build_implicit_step_matrix(
      xg::collision::build_cell_operator(
          xg::collision::build_scattering_operator(g, params),
          xg::collision::gyro_diffusion_rates(g, params, 1.0)),
      0.01);
  xg::collision::CollisionTensor t(g.nv(), n_cells);
  t.set_cell(0, a);
  for (int c = 1; c < n_cells; ++c) t.copy_cell(c, 0);
  return t;
}

std::vector<cplx> random_panel(int nv, int k, std::uint64_t seed) {
  xg::Rng rng(seed);
  std::vector<cplx> x(static_cast<size_t>(nv) * k);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Rates {
  double scalar_cells_per_s = 0.0;
  double batch_cells_per_s = 0.0;
};

/// Sim-cell applies per second over `reps` sweeps of all cells.
Rates measure(const xg::collision::CollisionTensor& t, int k, int reps) {
  const int nv = t.nv();
  const int n_cells = t.n_cells();
  const auto panel = random_panel(nv, k, 11);
  std::vector<cplx> out(panel.size());
  // Scalar path: one contiguous vector per member, cmat re-read per member.
  std::vector<std::vector<cplx>> xs(static_cast<size_t>(k));
  std::vector<cplx> y(static_cast<size_t>(nv));
  for (int s = 0; s < k; ++s) {
    xs[s].resize(static_cast<size_t>(nv));
    for (int iv = 0; iv < nv; ++iv) {
      xs[s][iv] = panel[static_cast<size_t>(iv) * k + s];
    }
  }
  const double applies = static_cast<double>(n_cells) * k * reps;
  double sink = 0.0;  // defeat dead-code elimination

  // Member-outer sweep, as k independent CGYRO instances run it: each member
  // streams the whole tensor, so cmat is re-read k times per rep.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int s = 0; s < k; ++s) {
      for (int c = 0; c < n_cells; ++c) {
        t.apply(c, xs[s], y);
        sink += y[0].real();
      }
    }
  }
  const double scalar_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (int c = 0; c < n_cells; ++c) {
      t.apply_batch(c, panel, out, k);
      sink += out[0].real();
    }
  }
  const double batch_s = seconds_since(t0);

  if (sink == 0.12345) std::fputs("", stderr);
  return {applies / scalar_s, applies / batch_s};
}

/// Bit-exactness of the batched panel vs the scalar per-member path.
bool verify(const xg::collision::CollisionTensor& t, int k) {
  const int nv = t.nv();
  const auto panel = random_panel(nv, k, 23);
  std::vector<cplx> out(panel.size());
  std::vector<cplx> x(static_cast<size_t>(nv)), y(static_cast<size_t>(nv));
  for (int c = 0; c < t.n_cells(); ++c) {
    t.apply_batch(c, panel, out, k);
    for (int s = 0; s < k; ++s) {
      for (int iv = 0; iv < nv; ++iv) {
        x[iv] = panel[static_cast<size_t>(iv) * k + s];
      }
      t.apply(c, x, y);
      for (int iv = 0; iv < nv; ++iv) {
        if (out[static_cast<size_t>(iv) * k + s] != y[iv]) return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]  (unknown arg: %s)\n", argv[0],
                   argv[i]);
      return 2;
    }
  }
  // Full shape: nv = 96, 256 cells ⇒ a 9.4 MB tensor, so the scalar path
  // genuinely streams cmat from beyond L2 as the solver does.
  const auto grid = smoke ? make_grid(3, 4) : make_grid(6, 8);
  const int n_cells = smoke ? 8 : 256;
  const int reps = smoke ? 2 : 20;
  const auto tensor = make_tensor(grid, n_cells);

  const int ks[] = {1, 4, 16};
  bool ok = true;
  std::string rows;
  for (const int k : ks) {
    if (!verify(tensor, k)) {
      std::fprintf(stderr, "FAIL: apply_batch != apply at k=%d\n", k);
      ok = false;
      continue;
    }
    // Warm-up sweep, then the measured sweeps.
    measure(tensor, k, 1);
    const auto r = measure(tensor, k, reps);
    char row[256];
    std::snprintf(row, sizeof row,
                  "    {\"k\": %d, \"scalar_cells_per_s\": %.4g, "
                  "\"batch_cells_per_s\": %.4g, \"speedup\": %.3f}",
                  k, r.scalar_cells_per_s, r.batch_cells_per_s,
                  r.batch_cells_per_s / r.scalar_cells_per_s);
    rows += (rows.empty() ? std::string() : std::string(",\n")) + row;
  }
  std::printf(
      "{\n  \"bench\": \"collision_apply\",\n  \"mode\": \"%s\",\n"
      "  \"nv\": %d,\n  \"n_cells\": %d,\n  \"results\": [\n%s\n  ]\n}\n",
      smoke ? "smoke" : "full", grid.nv(), n_cells, rows.c_str());
  return ok ? 0 : 1;
}
