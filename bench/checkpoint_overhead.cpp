// Checkpoint overhead bench: how much does periodic elastic snapshotting
// cost, and how small does skipping cmat keep the snapshots?
//
// Runs the same k-member ensemble twice — without checkpointing and with a
// snapshot every reporting interval — and reports the wall-clock overhead,
// per-snapshot bytes on disk, and the cmat bytes that would have been
// written had the snapshot included the shared tensor (the paper's point:
// cmat dominates memory, and because it is rebuilt from inputs it never
// needs to hit the disk).
//
// --smoke exits nonzero unless every snapshot committed, the newest one
// validates, and the state actually excludes cmat (snapshot bytes well
// under the cmat footprint).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "campaign/campaign.hpp"
#include "checkpoint/checkpoint.hpp"
#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  namespace fs = std::filesystem;
  bool smoke = false;
  int intervals = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--intervals") == 0 && i + 1 < argc) {
      intervals = std::atoi(argv[i + 1]);
    }
  }

  const int k = 4, ranks_per_sim = 2;
  gyro::Input base = gyro::Input::small_test(2);
  base.n_steps_per_report = 10;
  const auto batch = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
        in.tag = "ck" + std::to_string(i);
      });
  const auto machine = net::testbox(1, k * ranks_per_sim);

  const auto wall = [] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  campaign::RecoveryOptions opts;
  double t0 = wall();
  const auto plain = campaign::run_job_elastic(batch, machine, ranks_per_sim,
                                               intervals, gyro::Mode::kReal,
                                               opts);
  const double plain_ms = wall() - t0;

  const fs::path dir = fs::temp_directory_path() / "xg_ckpt_overhead";
  fs::remove_all(dir);
  opts.checkpoint_dir = dir.string();
  opts.checkpoint_every = 1;
  t0 = wall();
  const auto ckpt_run = campaign::run_job_elastic(
      batch, machine, ranks_per_sim, intervals, gyro::Mode::kReal, opts);
  const double ckpt_ms = wall() - t0;

  // Bytes of the newest snapshot vs what checkpointing cmat would cost.
  std::uintmax_t snap_bytes = 0;
  const auto scan = ckpt::find_latest_valid(dir.string());
  if (scan.latest_valid.has_value()) {
    for (const auto& e :
         fs::recursive_directory_iterator(scan.latest_valid->path)) {
      if (e.is_regular_file()) snap_bytes += e.file_size();
    }
  }
  // Shared cmat: one (nv x nv) complex block per (ic, it) pair, counted once
  // for the whole ensemble (the sharing the paper is about).
  const std::uintmax_t cmat_bytes =
      static_cast<std::uintmax_t>(base.nv()) * base.nv() * base.nc() *
      base.nt() * sizeof(std::complex<double>);

  std::printf("checkpoint overhead (k=%d, %d ranks/sim, %d intervals)\n", k,
              ranks_per_sim, intervals);
  std::printf("  plain run          : %9.1f ms wall\n", plain_ms);
  std::printf("  checkpointed run   : %9.1f ms wall (+%.1f%%)\n", ckpt_ms,
              plain_ms > 0 ? 100.0 * (ckpt_ms - plain_ms) / plain_ms : 0.0);
  std::printf("  snapshots committed: %9llu\n",
              static_cast<unsigned long long>(ckpt_run.snapshots_committed));
  std::printf("  snapshot size      : %9.1f KiB\n", snap_bytes / 1024.0);
  std::printf("  cmat if included   : %9.1f KiB (excluded: rebuilt from "
              "inputs)\n",
              cmat_bytes / 1024.0);

  int rc = 0;
  if (smoke) {
    const bool all_committed =
        ckpt_run.snapshots_committed == static_cast<std::uint64_t>(intervals);
    const bool valid = scan.latest_valid.has_value();
    const bool physics_same =
        plain.diagnostics.size() == ckpt_run.diagnostics.size() &&
        plain.diagnostics[0].phi_rms == ckpt_run.diagnostics[0].phi_rms;
    const bool small = snap_bytes > 0 && snap_bytes < cmat_bytes;
    rc = (all_committed && valid && physics_same && small) ? 0 : 1;
    std::printf("smoke: committed=%d valid=%d physics_same=%d "
                "cmat_excluded=%d -> %s\n",
                all_committed, valid, physics_same, small,
                rc == 0 ? "PASS" : "FAIL");
  }
  fs::remove_all(dir);
  return rc;
}
