// Ablation: rank placement. XGYRO's streaming-phase win comes from each
// member's small nv communicator fitting inside a node under the standard
// block placement. Scattering ranks round-robin across nodes destroys that
// locality — this bench quantifies how much of the Fig. 2 speedup placement
// is responsible for.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 5;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--steps") steps = std::atoi(argv[i + 1]);
  }
  gyro::Input base = gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  const int k = 8;
  const auto ensemble = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
      });

  std::printf("=== Placement ablation: 8x nl03c-like on 32 nodes (%d steps) ===\n\n",
              steps);
  std::printf("%-12s %-8s %12s %12s %12s\n", "placement", "job", "str_comm",
              "t/report", "speedup");

  xgyro::JobOptions opts;
  opts.mode = gyro::Mode::kModel;
  bool block_speedup_larger = true;
  double speedups[2] = {0, 0};
  int idx = 0;
  for (const auto strategy :
       {net::PlacementStrategy::kBlock, net::PlacementStrategy::kRoundRobin}) {
    auto machine = perfmodel::nl03c_machine(32);
    machine.placement = strategy;
    const char* name =
        strategy == net::PlacementStrategy::kBlock ? "block" : "round-robin";
    const auto cgyro =
        xgyro::run_cgyro_job(base, machine, machine.total_ranks(), opts);
    const auto xgyro_res =
        xgyro::run_xgyro_job(ensemble, machine, machine.total_ranks() / k, opts);
    const double cg_total = k * xgyro::report_step_seconds(cgyro);
    const double xg_total = xgyro::report_step_seconds(xgyro_res);
    std::printf("%-12s %-8s %12.3f %12.3f\n", name, "CGYROx8",
                k * xgyro::phase_seconds(cgyro, "str_comm"), cg_total);
    std::printf("%-12s %-8s %12.3f %12.3f %11.2fx\n", name, "XGYRO",
                xgyro::phase_seconds(xgyro_res, "str_comm"), xg_total,
                cg_total / xg_total);
    speedups[idx++] = cg_total / xg_total;
  }
  block_speedup_larger = speedups[0] > speedups[1];
  std::printf("\nblock placement preserves the ensemble advantage better than "
              "round-robin: %s\n",
              block_speedup_larger ? "YES" : "NO");
  return 0;
}
