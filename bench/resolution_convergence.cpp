// Velocity-space resolution study: the reason cmat is huge in the first
// place. The Sugama-class operator needs enough (ξ, energy) resolution for
// converged physics, and cmat grows as nv² per cell — so the resolution a
// user picks sets the memory wall that forces multi-node runs (paper §1).
// This bench sweeps n_xi and reports a physics observable (free energy
// after a fixed time, collisionally damped) together with the per-cell
// cmat cost, showing convergence of one against growth of the other.
#include <cmath>
#include <cstdio>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

namespace {

double damped_energy(int n_xi, int n_energy) {
  using namespace xg;
  gyro::Input in = gyro::Input::small_test(2);
  in.n_xi = n_xi;
  in.n_energy = n_energy;
  for (auto& s : in.species) {
    s.a_ln_n = 0.0;
    s.a_ln_t = 0.0;
  }
  in.collision.nu_ee = 0.5;
  in.n_steps_per_report = 25;
  double w = 0.0;
  const auto d = gyro::Decomposition::choose(in, 1);
  mpi::run_simulation(net::testbox(1, 1), 1, [&](mpi::Proc& p) {
    auto layout = gyro::make_cgyro_layout(p.world(), d);
    gyro::Simulation sim(in, d, std::move(layout), p, gyro::Mode::kReal);
    sim.initialize();
    sim.advance_report_interval();
    // Normalize by the initial energy so grids of different size compare.
    w = sim.diagnostics().free_energy;
  });
  return w;
}

}  // namespace

int main() {
  using namespace xg;
  std::printf("=== Velocity-resolution convergence vs cmat cost ===\n\n");
  std::printf("%-8s %-6s %14s %14s %12s\n", "n_xi", "nv", "W(t=0.5)/W0-ish",
              "delta vs finest", "cmat/cell");

  const int n_energy = 4;
  const int finest = 32;
  const double ref = damped_energy(finest, n_energy);
  double prev_delta = 1e9;
  bool converging = true;
  for (const int n_xi : {4, 8, 16, 32}) {
    const double w = damped_energy(n_xi, n_energy);
    const double delta = std::abs(w - ref) / ref;
    const int nv = 2 * n_energy * n_xi;
    const double cmat_cell = static_cast<double>(nv) * nv * sizeof(float);
    std::printf("%-8d %-6d %14.6e %14.3e %12s\n", n_xi, nv, w, delta,
                human_bytes(cmat_cell).c_str());
    if (n_xi < finest && n_xi > 4) {
      if (delta > prev_delta) converging = false;
    }
    if (n_xi < finest) prev_delta = delta;
  }
  std::printf("\ndamped free energy converges with pitch resolution while the "
              "per-cell cmat cost grows as nv^2: %s\n",
              converging ? "YES" : "NO");
  return converging ? 0 : 1;
}
