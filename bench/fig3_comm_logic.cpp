// Reproduces Figure 3: XGYRO communication logic for an ensemble of k
// simulations sharing cmat.
//
// Structural content regenerated here: every member keeps its own nv
// communicator (pv participants) for the str-phase AllReduces, while ONE
// ensemble-wide collision communicator (k·pv participants, distinct context)
// carries the str↔coll transpose over the shared cmat distribution.
#include <cstdio>
#include <string_view>
#include <map>
#include <set>

#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  // --smoke: suppress the tables, keep the pass/fail verdict — used by the
  // ctest registrations so comm-logic regressions fail tier-1.
  const bool smoke =
      argc > 1 && std::string_view(argv[1]) == "--smoke";
  using namespace xg;
  gyro::Input base = gyro::Input::small_test(2);
  base.n_steps_per_report = 1;
  base.n_toroidal = 2;  // forces the pv=2, pt=2 decomposition on 4 ranks
  const int k = 4, pv = 2, pt = 2;
  const auto ensemble = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
      });

  xgyro::JobOptions opts;
  opts.mode = gyro::Mode::kModel;
  opts.enable_trace = true;
  const auto res = xgyro::run_xgyro_job(ensemble, net::testbox(2, 8), pv * pt, opts);

  if (!smoke) {
  std::printf("=== Fig. 3: XGYRO communication logic (k=%d, pv=%d, pt=%d) ===\n\n",
                k, pv, pt);
  }

  struct Row {
    std::string kind, comm, phase;
    int participants;
    std::uint64_t context;
    bool operator<(const Row& o) const {
      return std::tie(phase, kind, comm, participants, context) <
             std::tie(o.phase, o.kind, o.comm, o.participants, o.context);
    }
  };
  std::map<Row, int> schedule;
  for (const auto& e : res.trace) {
    if (e.phase == "init") continue;
    schedule[{mpi::trace_kind_name(e.kind), e.comm_label, e.phase,
              e.participants, e.comm_context}]++;
  }
  if (!smoke) {
  std::printf("%-10s %-10s %-14s %12s %8s\n", "phase", "collective",
                "communicator", "participants", "count");
    for (const auto& [row, count] : schedule) {
      std::printf("%-10s %-10s %-14s %12d %8d\n", row.phase.c_str(),
                  row.kind.c_str(), row.comm.c_str(), row.participants, count);
    }
  }

  // Checks corresponding to the figure:
  std::set<std::uint64_t> nv_contexts;       // one per member
  std::set<std::uint64_t> coll_contexts;     // exactly one, shared
  int nv_participants = 0, coll_participants = 0;
  for (const auto& [row, count] : schedule) {
    if (row.phase == "str_comm" && row.kind == "AllReduce") {
      nv_contexts.insert(row.context);
      nv_participants = row.participants;
    }
    if (row.phase == "coll_comm" && row.kind == "AllToAll") {
      coll_contexts.insert(row.context);
      coll_participants = row.participants;
    }
  }
  if (!smoke) {
  std::printf("\nper-member nv communicators observed : %zu (expect k*pt=%d), "
                "%d participants each (expect pv=%d)\n",
                nv_contexts.size(), k * pt, nv_participants, pv);
    std::printf("shared coll communicators observed   : %zu (expect %d: one per "
                "toroidal block), %d participants each (expect k*pv=%d)\n",
                coll_contexts.size(), pt, coll_participants, k * pv);
  }
  bool disjoint = true;
  for (const auto ctx : coll_contexts) disjoint &= (nv_contexts.count(ctx) == 0);
  const bool separated = disjoint &&
                         static_cast<int>(nv_contexts.size()) == k * pt &&
                         static_cast<int>(coll_contexts.size()) == pt &&
                         coll_participants == k * pv && nv_participants == pv;
  std::printf("str nv comm separated from ensemble coll comm: %s\n",
              separated ? "YES (as in Fig. 3)" : "NO");
  return separated ? 0 : 1;
}
