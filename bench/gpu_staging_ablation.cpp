// Ablation: GPU-aware MPI vs host staging.
//
// CGYRO's state lives in GPU memory. On machines where the MPI library can
// read device buffers directly (GPU-aware, as Cray MPICH on Frontier) the
// transposes and reductions touch only the network; without it every payload
// crosses the host link twice (D2H + H2D) — historically a dominant cost for
// GPU-resident fusion codes, and one the authors' earlier work (PEARC22,
// ref [2]) measures. This bench quantifies the penalty on the Fig. 2 point
// and shows that XGYRO's relative advantage survives either way.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 5;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--steps") steps = std::atoi(argv[i + 1]);
  }
  gyro::Input base = gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  const int k = 8;
  const auto ensemble = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
      });

  std::printf("=== GPU-aware MPI vs host staging (8x nl03c-like, 32 nodes, "
              "%d steps) ===\n\n",
              steps);
  std::printf("%-12s %-8s %12s %12s %12s %10s\n", "MPI mode", "job",
              "str_comm", "coll_comm", "t/report", "speedup");

  xgyro::JobOptions opts;
  opts.mode = gyro::Mode::kModel;
  double totals[2][2] = {{0, 0}, {0, 0}};  // [aware][cgyro/xgyro]
  int row = 0;
  for (const bool aware : {true, false}) {
    auto machine = perfmodel::nl03c_machine(32);
    machine.gpu_aware_mpi = aware;
    const char* name = aware ? "gpu-aware" : "host-staged";
    const auto cgyro =
        xgyro::run_cgyro_job(base, machine, machine.total_ranks(), opts);
    const auto xg =
        xgyro::run_xgyro_job(ensemble, machine, machine.total_ranks() / k, opts);
    const double cg_total = k * xgyro::report_step_seconds(cgyro);
    const double xg_total = xgyro::report_step_seconds(xg);
    totals[row][0] = cg_total;
    totals[row][1] = xg_total;
    std::printf("%-12s %-8s %12.3f %12.3f %12.3f\n", name, "CGYROx8",
                k * xgyro::phase_seconds(cgyro, "str_comm"),
                k * xgyro::phase_seconds(cgyro, "coll_comm"), cg_total);
    std::printf("%-12s %-8s %12.3f %12.3f %12.3f %9.2fx\n", name, "XGYRO",
                xgyro::phase_seconds(xg, "str_comm"),
                xgyro::phase_seconds(xg, "coll_comm"), xg_total,
                cg_total / xg_total);
    ++row;
  }

  const double staging_penalty_cgyro = totals[1][0] / totals[0][0];
  std::printf("\nhost staging slows the CGYRO campaign by %.2fx; the XGYRO "
              "advantage persists in both modes.\n",
              staging_penalty_cgyro);
  return (totals[0][1] < totals[0][0] && totals[1][1] < totals[1][0]) ? 0 : 1;
}
