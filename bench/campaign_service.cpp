// Online-service ablation: cmat-signature batching vs one-job-per-request.
//
// The same signature-skewed burst of nl03c-scale requests is pushed through
// the campaign service twice on the paper's 32-node machine — once with
// online batching (identical collision fingerprints coalesce into one
// shared-cmat XGYRO job inside the batching window) and once with batching
// disabled (the ablation: every request becomes its own k=1 job). On the
// nl03c-calibrated capacity a single simulation only fits on the full
// 32-node allocation, so the ablation serializes the whole burst; batching
// runs up to max_batch same-signature members concurrently on those same
// nodes for the paper's §2.1 sublinear ensemble cost.
//
//   ./bench/campaign_service [--json FILE] [--smoke]
//                            [--scale-only | --classic-only]
//
// Gate (exit 0/1): batching must strictly beat the ablation on completed
// requests per virtual hour, must not lose on makespan, and both runs must
// complete every admitted request. Queue-wait percentiles for both arms are
// recorded for the baseline harness.
//
// A third arm reruns the batched configuration with the full observability
// plane on (event sink + periodic monitor snapshots + an SLO monitor) and
// gates two claims: the virtual-time results are bit-identical to the
// unobserved run (observability must never perturb the simulation), and
// the wall-clock overhead of emitting/consuming the event stream stays
// under 2% (best-of-N, interleaved, with a small absolute slack so timer
// noise on a fast run cannot fail the gate). Wall-clock fields in the JSON
// are --ignore'd by the baseline harness; the record count is gated.
//
// The scale study pushes a 10⁵-request production-shaped stream (a long
// Poisson mix of short, medium, and wide 2-node jobs) through the modeled
// fast path — slices priced by the perfmodel, a 1% seeded DES audit — and
// gates the production configuration (EASY backfilling + adaptive
// windows) against two ablations on the same stream:
//
//   no-backfill   — strict FIFO placement: wide heads idle the cluster,
//                   so the full config must strictly win queue wait at the
//                   median and the p95 while never losing completed
//                   requests per virtual hour or makespan (the stream is
//                   sub-saturated, so throughput is arrival-bound and
//                   backfilling's win is latency);
//   fixed-window  — every batch holds the full batching window: the full
//                   config must strictly win queue-wait p95 without
//                   giving up throughput.
//
// The production arm streams its ~10⁶-record event log through the
// streaming EventValidator and the ServiceMonitor as it runs (nothing is
// buffered); the replayed monitor must agree with the service's exact
// accounting, the fast-path audit gate must pass at the default
// tolerance, and the starvation peak must stay bounded by the widest
// job's span (the EASY head-protection bound, PR-8's starvation monitor).
// --smoke shrinks the stream to 2·10³ requests with the same shape;
// --scale-only / --classic-only select one half of the bench.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/monitor.hpp"
#include "campaign/service.hpp"
#include "perfmodel/perfmodel.hpp"
#include "telemetry/events.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

/// Signature-skewed burst: arrivals exponential at `rate_hz`, signature s
/// drawn with P(s) ∝ 2^-s (the head signature dominates — the regime where
/// batching pays), each request carrying a sweep-safe gradient of its own.
std::vector<xg::campaign::Request> make_stream(int n, int signatures,
                                               double rate_hz, int steps) {
  xg::Rng rng(2024);
  xg::gyro::Input base = xg::gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  std::vector<xg::campaign::Request> stream;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.next_double()) / rate_hz;
    xg::campaign::Request r;
    r.arrival_s = t;
    r.tenant = i % 2 == 0 ? "fusion" : "astro";
    int sig = 0;
    while (sig + 1 < signatures && rng.next_double() < 0.5) ++sig;
    r.input = base;
    r.input.collision.nu_ee = base.collision.nu_ee * (1.0 + 0.5 * sig);
    r.input.species[0].a_ln_t = 2.0 + 0.125 * i;
    r.input.seed = 100 + static_cast<std::uint64_t>(i);
    r.input.tag = xg::strprintf("req%d", i);
    stream.push_back(std::move(r));
  }
  return stream;
}

xg::campaign::ServiceResult run_arm(
    const std::vector<xg::campaign::Request>& stream, bool batching,
    int intervals, double window_s, int max_batch,
    xg::telemetry::EventSink* sink = nullptr) {
  xg::campaign::ServiceConfig cfg;
  cfg.cluster = xg::perfmodel::nl03c_machine(32);
  cfg.batching = batching;
  cfg.batching_window_s = window_s;
  cfg.max_batch = max_batch;
  cfg.n_report_intervals = intervals;
  cfg.mode = xg::gyro::Mode::kModel;
  if (sink != nullptr) {
    // The whole plane: event stream, periodic snapshots, SLO monitor.
    cfg.events = sink;
    cfg.metrics_every_s = 0.5;
    cfg.slo = "wait=1e6;target=0.9;burn=2";
  }
  xg::campaign::CampaignService service(cfg);
  return service.run(stream);
}

// --------------------------------------------------------------------------
// Scale study: production-shaped streams through the modeled fast path.

/// Production-shaped Poisson mix on testbox(8, 4): mostly sub-second
/// 1-node requests across `signatures` collision signatures, ~8% medium
/// 1-node jobs (~1.5 virtual s) and 2% wide jobs whose cmat does not fit
/// one node (radial = 131072 plans onto 2 nodes) — the heterogeneity that
/// makes head-blocking, and therefore placement policy, matter.
std::vector<xg::campaign::Request> make_scale_stream(int n, double rate_hz,
                                                     int signatures) {
  xg::Rng rng(777);
  const xg::gyro::Input small = xg::gyro::Input::small_test(1);
  xg::gyro::Input medium = xg::gyro::Input::small_test(2);
  medium.n_radial = 4096;
  xg::gyro::Input wide = xg::gyro::Input::small_test(2);
  wide.n_radial = 131072;
  std::vector<xg::campaign::Request> stream;
  stream.reserve(static_cast<size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.next_double()) / rate_hz;
    xg::campaign::Request r;
    r.arrival_s = t;
    r.tenant = xg::strprintf("t%d", i % 3);
    const double cls = rng.next_double();
    if (cls < 0.02) {
      r.input = wide;
    } else if (cls < 0.10) {
      r.input = medium;
    } else {
      r.input = small;
      int sig = 0;
      while (sig + 1 < signatures && rng.next_double() < 0.5) ++sig;
      r.input.collision.nu_ee = small.collision.nu_ee * (1.0 + 0.5 * sig);
    }
    r.input.species[0].a_ln_t = 2.0 + 0.125 * (i % 64);
    r.input.seed = 1000 + static_cast<std::uint64_t>(i);
    stream.push_back(std::move(r));
  }
  return stream;
}

/// One fan-out sink: validates the stream inline (O(requests) memory, not
/// O(records)) and feeds the live monitor replay — the servemon pipeline,
/// run at emission time instead of from a buffered log.
struct StreamingPlane : xg::telemetry::EventSink {
  xg::telemetry::EventValidator validator;
  xg::campaign::ServiceMonitor monitor;
  void write(const xg::telemetry::Json& record) override {
    validator.consume(record);
    (void)monitor.consume(record);
  }
};

xg::campaign::ServiceResult run_scale_arm(
    const std::vector<xg::campaign::Request>& stream,
    xg::campaign::PlacementPolicy placement, bool window_auto,
    xg::telemetry::EventSink* sink = nullptr) {
  xg::campaign::ServiceConfig cfg;
  cfg.cluster = xg::net::testbox(8, 4);
  cfg.max_queue_depth = static_cast<int>(stream.size());
  cfg.tenant_quota = static_cast<int>(stream.size());
  cfg.batching_window_s = 0.5;
  cfg.max_batch = 8;
  cfg.mode = xg::gyro::Mode::kModel;
  cfg.fast_path = true;
  cfg.audit_frac = 0.01;
  cfg.audit_seed = 42;
  cfg.placement = placement;
  cfg.window_auto = window_auto;
  cfg.events = sink;
  xg::campaign::CampaignService service(cfg);
  return service.run(stream);
}

template <typename F>
double wall_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

xg::telemetry::Json arm_json(const xg::campaign::ServiceResult& r) {
  xg::telemetry::Json j = xg::telemetry::Json::object();
  j.set("requests_per_hour", r.requests_per_hour)
      .set("jobs_per_hour", r.jobs_per_hour)
      .set("jobs", static_cast<std::int64_t>(r.jobs.size()))
      .set("makespan_s", r.makespan_s)
      .set("node_busy_frac", r.node_busy_frac);
  xg::telemetry::Json qw = xg::telemetry::Json::object();
  qw.set("p50", r.queue_wait.p50)
      .set("p95", r.queue_wait.p95)
      .set("p99", r.queue_wait.p99);
  j.set("queue_wait_s", std::move(qw));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::string json_out;
  bool smoke = false;
  bool verbose = false;
  bool scale_only = false;
  bool classic_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--scale-only") == 0) {
      scale_only = true;
    } else if (std::strcmp(argv[i], "--classic-only") == 0) {
      classic_only = true;
    }
  }

  bool pass = true;
  telemetry::Json doc = telemetry::Json::object();
  doc.set("schema", "xgyro.bench.campaign_service").set("schema_version", 2);

  if (!scale_only) {
    // A burst (rate ≫ 1/job-seconds) so throughput measures scheduling,
    // not arrival spacing; the smoke cell keeps the same shape at half the
    // size.
    const int n = smoke ? 6 : 12;
    const int intervals = smoke ? 4 : 10;
    const int steps = 1;
    const auto stream =
        make_stream(n, /*signatures=*/3, /*rate_hz=*/50.0, steps);

    const auto batched = run_arm(stream, true, intervals, /*window_s=*/0.5,
                                 /*max_batch=*/8);
    const auto ablation = run_arm(stream, false, intervals, 0.5, 8);

    // Observability arm: the batched configuration with the event plane
    // on. Interleaved best-of-N wall times keep the overhead comparison
    // fair on a machine with drifting load.
    const int reps = 5;
    double plain_best_ms = 1e300, observed_best_ms = 1e300;
    telemetry::EventBuffer events;
    campaign::ServiceResult observed;
    for (int rep = 0; rep < reps; ++rep) {
      plain_best_ms = std::min(plain_best_ms, wall_ms([&] {
        (void)run_arm(stream, true, intervals, 0.5, 8);
      }));
      observed_best_ms = std::min(observed_best_ms, wall_ms([&] {
        events.records.clear();
        observed = run_arm(stream, true, intervals, 0.5, 8, &events);
      }));
    }
    const double overhead_pct =
        plain_best_ms > 0.0
            ? 100.0 * (observed_best_ms - plain_best_ms) / plain_best_ms
            : 0.0;
    const telemetry::EventLogStats ev =
        telemetry::validate_events(events.records);
    const bool bit_identical = observed.describe() == batched.describe() &&
                               observed.makespan_s == batched.makespan_s;

    std::printf("=== Online service: cmat-signature batching vs no batching "
                "(%d requests, 32 nodes) ===\n\n", n);
    std::printf("%-12s %8s %14s %12s %10s %10s %10s\n", "arm", "jobs",
                "req_per_hour", "makespan_s", "wait_p50", "wait_p95",
                "wait_p99");
    for (const auto* arm : {&batched, &ablation}) {
      std::printf("%-12s %8zu %14.1f %12.3f %10.3f %10.3f %10.3f\n",
                  arm == &batched ? "batched" : "no-batching",
                  arm->jobs.size(), arm->requests_per_hour, arm->makespan_s,
                  arm->queue_wait.p50, arm->queue_wait.p95,
                  arm->queue_wait.p99);
    }

    if (verbose) {
      std::printf("\n--- batched ---\n%s--- no-batching ---\n%s",
                  batched.describe().c_str(), ablation.describe().c_str());
    }

    std::printf("\nobservability: %d event record(s), overhead %.2f%% "
                "(best-of-%d: %.1f ms observed vs %.1f ms plain), virtual "
                "results %s\n",
                ev.records, overhead_pct, reps, observed_best_ms,
                plain_best_ms, bit_identical ? "bit-identical" : "DIVERGED");

    if (batched.completed != n || ablation.completed != n) {
      std::printf("\nFAIL: not every request completed (batched %d, ablation "
                  "%d of %d)\n", batched.completed, ablation.completed, n);
      pass = false;
    }
    // The gate: strict throughput win, and never a makespan loss.
    if (batched.requests_per_hour <= ablation.requests_per_hour) pass = false;
    if (batched.makespan_s > ablation.makespan_s) pass = false;
    // Observability gates: the event plane must not perturb the
    // virtual-time results, the emitted log must be schema-valid and
    // complete, and its wall-clock cost must stay under 2% (plus 50 ms of
    // absolute slack: this arm emits only ~40 records, so on a ~2 s wall
    // any smaller margin gates scheduler jitter, not event-plane cost —
    // a real per-record regression shows up orders of magnitude earlier
    // in the 6·10⁵-record scale arm's wall time).
    if (!bit_identical) {
      std::printf("FAIL: observability perturbed the virtual-time results\n");
      pass = false;
    }
    if (!ev.ended || ev.completed != n) {
      std::printf("FAIL: event log incomplete (%d completed of %d, "
                  "ended=%d)\n", ev.completed, n, ev.ended ? 1 : 0);
      pass = false;
    }
    if (observed_best_ms > plain_best_ms * 1.02 + 50.0) {
      std::printf("FAIL: observability overhead %.2f%% exceeds the 2%% "
                  "gate\n", overhead_pct);
      pass = false;
    }

    const double speedup = ablation.requests_per_hour > 0.0
                               ? batched.requests_per_hour /
                                     ablation.requests_per_hour
                               : 0.0;
    std::printf("\nbatching %s (%.2fx the ablation's completed requests per "
                "virtual hour)\n", pass ? "PASSES" : "FAILS", speedup);

    doc.set("requests", n)
        .set("intervals", intervals)
        .set("batched", arm_json(batched))
        .set("ablation", arm_json(ablation))
        .set("speedup", speedup)
        .set("observability",
             telemetry::Json::object()
                 .set("records", ev.records)
                 .set("snapshots", ev.by_type.count("monitor.snapshot")
                                       ? ev.by_type.at("monitor.snapshot")
                                       : 0)
                 .set("bit_identical", bit_identical)
                 .set("overhead_pct", overhead_pct)
                 .set("wall_plain_ms", plain_best_ms)
                 .set("wall_observed_ms", observed_best_ms));
  }

  if (!classic_only) {
    const int sn = smoke ? 2000 : 100000;
    const auto sstream = make_scale_stream(sn, /*rate_hz=*/6.0,
                                           /*signatures=*/4);

    StreamingPlane plane;
    const auto t0 = std::chrono::steady_clock::now();
    const auto prod = run_scale_arm(
        sstream, campaign::PlacementPolicy::kBackfill, /*window_auto=*/true,
        &plane);
    const double prod_wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - t0).count();
    const auto nofill = run_scale_arm(
        sstream, campaign::PlacementPolicy::kFifo, /*window_auto=*/true);
    const auto fixedw = run_scale_arm(
        sstream, campaign::PlacementPolicy::kBackfill,
        /*window_auto=*/false);

    std::printf("\n=== Scale study: %d-request fast-path stream "
                "(8 nodes, 1%% DES audit) ===\n\n", sn);
    std::printf("%-14s %9s %14s %12s %10s %10s %10s\n", "arm", "jobs",
                "req_per_hour", "makespan_s", "wait_p50", "wait_p95",
                "wait_p99");
    const struct { const char* name; const campaign::ServiceResult* r; }
        arms[] = {{"production", &prod},
                  {"no-backfill", &nofill},
                  {"fixed-window", &fixedw}};
    for (const auto& [name, r] : arms) {
      std::printf("%-14s %9zu %14.1f %12.1f %10.3f %10.3f %10.3f\n", name,
                  r->jobs.size(), r->requests_per_hour, r->makespan_s,
                  r->queue_wait.p50, r->queue_wait.p95, r->queue_wait.p99);
    }

    // Inline streaming plane: validator + monitor consumed every record as
    // it was emitted; finish() runs the end-of-log checks.
    const telemetry::EventLogStats sev = plane.validator.finish();
    const telemetry::Json replay = plane.monitor.report();
    const telemetry::Json& audit = prod.fast_path.at("audit");
    const double starvation_peak_s =
        replay.at("starvation").at("peak_age_s").as_double();
    // The EASY head-protection bound: the widest job of the mix spans
    // ~25 virtual s (radial = 131072 on 2 nodes), and a queued request can
    // sit behind a short chain of such heads under a burst — but never
    // starve unboundedly the way first-fit leapfrogging allows. The
    // 10⁵-request stream peaks at ~3.4 spans; four is the gate.
    const double widest_span_s = 26.0;
    const double starvation_bound_s = 4.0 * widest_span_s;

    std::printf("\nfast path: %d modeled, %d audited (%d forced); audit "
                "gate n=%lld worst ratio %.3f (tolerance %.1f) -> %s\n",
                prod.jobs_modeled, prod.jobs_audited, prod.audits_forced,
                static_cast<long long>(audit.at("n").as_int()),
                audit.at("worst_ratio").as_double(),
                audit.at("tolerance").as_double(),
                audit.at("pass").as_bool() ? "PASS" : "FAIL");
    std::printf("streaming plane: %d record(s) validated inline; replayed "
                "starvation peak %.1f s (bound %.0f s); wall %.0f ms for "
                "the production arm\n",
                sev.records, starvation_peak_s, starvation_bound_s,
                prod_wall_ms);

    if (verbose) {
      std::printf("\n--- production ---\n%s", prod.describe().c_str());
    }

    // Completion: nothing shed, nothing failed, in any arm.
    for (const auto& [name, r] : arms) {
      if (r->completed != sn) {
        std::printf("FAIL: scale arm %s completed %d of %d\n", name,
                    r->completed, sn);
        pass = false;
      }
    }
    // Strict win vs the no-backfill ablation: FIFO idles the cluster
    // behind wide heads, so backfilling must strictly cut queue wait at
    // the median and the tail while never losing throughput or makespan
    // (the stream is sub-saturated — both arms drain by the last arrival,
    // so throughput is arrival-bound and the win is latency).
    if (prod.queue_wait.p50 >= nofill.queue_wait.p50 ||
        prod.queue_wait.p95 >= nofill.queue_wait.p95) {
      std::printf("FAIL: backfilling did not beat FIFO queue wait "
                  "(p50 %.3f vs %.3f, p95 %.3f vs %.3f s)\n",
                  prod.queue_wait.p50, nofill.queue_wait.p50,
                  prod.queue_wait.p95, nofill.queue_wait.p95);
      pass = false;
    }
    if (prod.requests_per_hour + 1e-9 < nofill.requests_per_hour) {
      std::printf("FAIL: backfilling lost throughput to FIFO "
                  "(%.1f vs %.1f req/h)\n", prod.requests_per_hour,
                  nofill.requests_per_hour);
      pass = false;
    }
    if (prod.makespan_s > nofill.makespan_s + 1e-9) {
      std::printf("FAIL: backfilling lost makespan to FIFO\n");
      pass = false;
    }
    // Strict wait win vs the fixed-window ablation, at no throughput cost.
    if (prod.queue_wait.p95 >= fixedw.queue_wait.p95) {
      std::printf("FAIL: adaptive windows did not beat the fixed window on "
                  "wait p95 (%.3f vs %.3f s)\n", prod.queue_wait.p95,
                  fixedw.queue_wait.p95);
      pass = false;
    }
    if (prod.requests_per_hour + 1e-9 < fixedw.requests_per_hour) {
      std::printf("FAIL: adaptive windows gave up throughput vs the fixed "
                  "window\n");
      pass = false;
    }
    // The sampled-audit divergence gate at the default tolerance.
    if (!audit.at("pass").as_bool()) {
      std::printf("FAIL: fast-path audit gate tripped\n");
      pass = false;
    }
    if (prod.jobs_audited == 0 || prod.jobs_modeled == 0) {
      std::printf("FAIL: expected both modeled and audited jobs "
                  "(%d modeled, %d audited)\n", prod.jobs_modeled,
                  prod.jobs_audited);
      pass = false;
    }
    // Streaming validation and replay agreement: the inline monitor must
    // reproduce the service's exact accounting at scale.
    if (!sev.ended || sev.completed != sn ||
        sev.jobs_modeled != prod.jobs_modeled ||
        sev.jobs_audited != prod.jobs_audited) {
      std::printf("FAIL: streamed event log disagrees with the service "
                  "(%d completed, %d modeled, %d audited)\n", sev.completed,
                  sev.jobs_modeled, sev.jobs_audited);
      pass = false;
    }
    if (starvation_peak_s > starvation_bound_s) {
      std::printf("FAIL: starvation peak %.1f s exceeds the EASY bound "
                  "%.0f s\n", starvation_peak_s, starvation_bound_s);
      pass = false;
    }

    std::printf("\nscale study %s\n", pass ? "PASSES" : "FAILS");

    auto scale_arm_json = [](const campaign::ServiceResult& r) {
      telemetry::Json j = arm_json(r);
      j.set("modeled", r.jobs_modeled).set("audited", r.jobs_audited);
      return j;
    };
    doc.set("scale",
            telemetry::Json::object()
                .set("requests", sn)
                .set("production", scale_arm_json(prod))
                .set("no_backfill", scale_arm_json(nofill))
                .set("fixed_window", scale_arm_json(fixedw))
                .set("audit",
                     telemetry::Json::object()
                         .set("n", audit.at("n").as_int())
                         .set("worst_ratio",
                              audit.at("worst_ratio").as_double())
                         .set("pass", audit.at("pass").as_bool()))
                .set("events", sev.records)
                .set("starvation_peak_s", starvation_peak_s)
                .set("wall_production_ms", prod_wall_ms));
  }

  doc.set("pass", pass);
  if (!json_out.empty()) {
    telemetry::write_json_file(json_out, doc);
    std::printf("series written to %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
