// Online-service ablation: cmat-signature batching vs one-job-per-request.
//
// The same signature-skewed burst of nl03c-scale requests is pushed through
// the campaign service twice on the paper's 32-node machine — once with
// online batching (identical collision fingerprints coalesce into one
// shared-cmat XGYRO job inside the batching window) and once with batching
// disabled (the ablation: every request becomes its own k=1 job). On the
// nl03c-calibrated capacity a single simulation only fits on the full
// 32-node allocation, so the ablation serializes the whole burst; batching
// runs up to max_batch same-signature members concurrently on those same
// nodes for the paper's §2.1 sublinear ensemble cost.
//
//   ./bench/campaign_service [--json FILE] [--smoke]
//
// Gate (exit 0/1): batching must strictly beat the ablation on completed
// requests per virtual hour, must not lose on makespan, and both runs must
// complete every admitted request. Queue-wait percentiles for both arms are
// recorded for the baseline harness.
//
// A third arm reruns the batched configuration with the full observability
// plane on (event sink + periodic monitor snapshots + an SLO monitor) and
// gates two claims: the virtual-time results are bit-identical to the
// unobserved run (observability must never perturb the simulation), and
// the wall-clock overhead of emitting/consuming the event stream stays
// under 2% (best-of-N, interleaved, with a small absolute slack so timer
// noise on a fast run cannot fail the gate). Wall-clock fields in the JSON
// are --ignore'd by the baseline harness; the record count is gated.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/service.hpp"
#include "perfmodel/perfmodel.hpp"
#include "telemetry/events.hpp"
#include "telemetry/json.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace {

/// Signature-skewed burst: arrivals exponential at `rate_hz`, signature s
/// drawn with P(s) ∝ 2^-s (the head signature dominates — the regime where
/// batching pays), each request carrying a sweep-safe gradient of its own.
std::vector<xg::campaign::Request> make_stream(int n, int signatures,
                                               double rate_hz, int steps) {
  xg::Rng rng(2024);
  xg::gyro::Input base = xg::gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  std::vector<xg::campaign::Request> stream;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += -std::log(1.0 - rng.next_double()) / rate_hz;
    xg::campaign::Request r;
    r.arrival_s = t;
    r.tenant = i % 2 == 0 ? "fusion" : "astro";
    int sig = 0;
    while (sig + 1 < signatures && rng.next_double() < 0.5) ++sig;
    r.input = base;
    r.input.collision.nu_ee = base.collision.nu_ee * (1.0 + 0.5 * sig);
    r.input.species[0].a_ln_t = 2.0 + 0.125 * i;
    r.input.seed = 100 + static_cast<std::uint64_t>(i);
    r.input.tag = xg::strprintf("req%d", i);
    stream.push_back(std::move(r));
  }
  return stream;
}

xg::campaign::ServiceResult run_arm(
    const std::vector<xg::campaign::Request>& stream, bool batching,
    int intervals, double window_s, int max_batch,
    xg::telemetry::EventSink* sink = nullptr) {
  xg::campaign::ServiceConfig cfg;
  cfg.cluster = xg::perfmodel::nl03c_machine(32);
  cfg.batching = batching;
  cfg.batching_window_s = window_s;
  cfg.max_batch = max_batch;
  cfg.n_report_intervals = intervals;
  cfg.mode = xg::gyro::Mode::kModel;
  if (sink != nullptr) {
    // The whole plane: event stream, periodic snapshots, SLO monitor.
    cfg.events = sink;
    cfg.metrics_every_s = 0.5;
    cfg.slo = "wait=1e6;target=0.9;burn=2";
  }
  xg::campaign::CampaignService service(cfg);
  return service.run(stream);
}

template <typename F>
double wall_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

xg::telemetry::Json arm_json(const xg::campaign::ServiceResult& r) {
  xg::telemetry::Json j = xg::telemetry::Json::object();
  j.set("requests_per_hour", r.requests_per_hour)
      .set("jobs_per_hour", r.jobs_per_hour)
      .set("jobs", static_cast<std::int64_t>(r.jobs.size()))
      .set("makespan_s", r.makespan_s)
      .set("node_busy_frac", r.node_busy_frac);
  xg::telemetry::Json qw = xg::telemetry::Json::object();
  qw.set("p50", r.queue_wait.p50)
      .set("p95", r.queue_wait.p95)
      .set("p99", r.queue_wait.p99);
  j.set("queue_wait_s", std::move(qw));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::string json_out;
  bool smoke = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    }
  }

  // A burst (rate ≫ 1/job-seconds) so throughput measures scheduling, not
  // arrival spacing; the smoke cell keeps the same shape at half the size.
  const int n = smoke ? 6 : 12;
  const int intervals = smoke ? 4 : 10;
  const int steps = 1;
  const auto stream = make_stream(n, /*signatures=*/3, /*rate_hz=*/50.0, steps);

  const auto batched = run_arm(stream, true, intervals, /*window_s=*/0.5,
                               /*max_batch=*/8);
  const auto ablation = run_arm(stream, false, intervals, 0.5, 8);

  // Observability arm: the batched configuration with the event plane on.
  // Interleaved best-of-N wall times keep the overhead comparison fair on
  // a machine with drifting load.
  const int reps = smoke ? 3 : 5;
  double plain_best_ms = 1e300, observed_best_ms = 1e300;
  telemetry::EventBuffer events;
  campaign::ServiceResult observed;
  for (int rep = 0; rep < reps; ++rep) {
    plain_best_ms = std::min(plain_best_ms, wall_ms([&] {
      (void)run_arm(stream, true, intervals, 0.5, 8);
    }));
    observed_best_ms = std::min(observed_best_ms, wall_ms([&] {
      events.records.clear();
      observed = run_arm(stream, true, intervals, 0.5, 8, &events);
    }));
  }
  const double overhead_pct =
      plain_best_ms > 0.0
          ? 100.0 * (observed_best_ms - plain_best_ms) / plain_best_ms
          : 0.0;
  const telemetry::EventLogStats ev = telemetry::validate_events(events.records);
  const bool bit_identical = observed.describe() == batched.describe() &&
                             observed.makespan_s == batched.makespan_s;

  std::printf("=== Online service: cmat-signature batching vs no batching "
              "(%d requests, 32 nodes) ===\n\n", n);
  std::printf("%-12s %8s %14s %12s %10s %10s %10s\n", "arm", "jobs",
              "req_per_hour", "makespan_s", "wait_p50", "wait_p95",
              "wait_p99");
  for (const auto* arm : {&batched, &ablation}) {
    std::printf("%-12s %8zu %14.1f %12.3f %10.3f %10.3f %10.3f\n",
                arm == &batched ? "batched" : "no-batching", arm->jobs.size(),
                arm->requests_per_hour, arm->makespan_s, arm->queue_wait.p50,
                arm->queue_wait.p95, arm->queue_wait.p99);
  }

  if (verbose) {
    std::printf("\n--- batched ---\n%s--- no-batching ---\n%s",
                batched.describe().c_str(), ablation.describe().c_str());
  }

  std::printf("\nobservability: %d event record(s), overhead %.2f%% "
              "(best-of-%d: %.1f ms observed vs %.1f ms plain), virtual "
              "results %s\n",
              ev.records, overhead_pct, reps, observed_best_ms,
              plain_best_ms, bit_identical ? "bit-identical" : "DIVERGED");

  bool pass = true;
  if (batched.completed != n || ablation.completed != n) {
    std::printf("\nFAIL: not every request completed (batched %d, ablation "
                "%d of %d)\n", batched.completed, ablation.completed, n);
    pass = false;
  }
  // The gate: strict throughput win, and never a makespan loss.
  if (batched.requests_per_hour <= ablation.requests_per_hour) pass = false;
  if (batched.makespan_s > ablation.makespan_s) pass = false;
  // Observability gates: the event plane must not perturb the virtual-time
  // results, the emitted log must be schema-valid and complete, and its
  // wall-clock cost must stay under 2% (plus 2 ms of absolute slack so
  // timer noise on a fast run cannot flake the gate).
  if (!bit_identical) {
    std::printf("FAIL: observability perturbed the virtual-time results\n");
    pass = false;
  }
  if (!ev.ended || ev.completed != n) {
    std::printf("FAIL: event log incomplete (%d completed of %d, ended=%d)\n",
                ev.completed, n, ev.ended ? 1 : 0);
    pass = false;
  }
  if (observed_best_ms > plain_best_ms * 1.02 + 2.0) {
    std::printf("FAIL: observability overhead %.2f%% exceeds the 2%% gate\n",
                overhead_pct);
    pass = false;
  }

  const double speedup = ablation.requests_per_hour > 0.0
                             ? batched.requests_per_hour /
                                   ablation.requests_per_hour
                             : 0.0;
  std::printf("\nbatching %s (%.2fx the ablation's completed requests per "
              "virtual hour)\n", pass ? "PASSES" : "FAILS", speedup);

  if (!json_out.empty()) {
    telemetry::Json doc = telemetry::Json::object();
    doc.set("schema", "xgyro.bench.campaign_service")
        .set("schema_version", 1)
        .set("requests", n)
        .set("intervals", intervals)
        .set("batched", arm_json(batched))
        .set("ablation", arm_json(ablation))
        .set("speedup", speedup)
        .set("observability",
             telemetry::Json::object()
                 .set("records", ev.records)
                 .set("snapshots", ev.by_type.count("monitor.snapshot")
                                       ? ev.by_type.at("monitor.snapshot")
                                       : 0)
                 .set("bit_identical", bit_identical)
                 .set("overhead_pct", overhead_pct)
                 .set("wall_plain_ms", plain_best_ms)
                 .set("wall_observed_ms", observed_best_ms))
        .set("pass", pass);
    telemetry::write_json_file(json_out, doc);
    std::printf("series written to %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
