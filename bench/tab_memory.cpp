// Reproduces the paper's memory claims as a table:
//   §1: for nl03c, cmat is ~10× the size of all other buffers combined;
//   §3: a single CGYRO simulation requires at least 32 Frontier nodes;
//   §2.1: sharing cmat across an ensemble shrinks its per-rank slice by k
//         while all other buffers are unchanged.
#include <cstdio>
#include <string_view>

#include "cluster/memory.hpp"
#include "gyro/simulation.hpp"
#include "perfmodel/perfmodel.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  // --smoke: suppress the tables, keep the pass/fail verdict — used by the
  // ctest registrations so comm-logic regressions fail tier-1.
  const bool smoke =
      argc > 1 && std::string_view(argv[1]) == "--smoke";
  using namespace xg;
  const auto in = gyro::Input::nl03c_like();

  if (!smoke) {
  std::printf("=== Memory accounting for the nl03c-like case ===\n");
    std::printf("nc=%d nv=%d nt=%d; machine: %s, %s per rank\n\n", in.nc(),
                in.nv(), in.nt(), perfmodel::nl03c_machine(1).name.c_str(),
                human_bytes(perfmodel::nl03c_machine(1).rank_memory_bytes).c_str());
  }

  // --- §1: cmat vs everything else at the paper's 32-node decomposition ----
  const auto d256 = gyro::Decomposition::choose(in, 256);
  const auto inv = gyro::Simulation::memory_inventory(in, d256, 1);
  if (!smoke) {
  std::printf("per-rank inventory, CGYRO on 32 nodes (256 ranks, pv=%d pt=%d):\n%s\n",
                d256.pv, d256.pt, inv.table().c_str());
  }
  const double ratio = inv.bytes_of("cmat") / inv.total_excluding("cmat");
  std::printf("cmat / all-other-buffers ratio: %.1fx   (paper: ~10x)\n\n", ratio);

  // --- §3: node-count feasibility sweep -------------------------------------
  std::printf("%-8s %-14s %-14s %-12s %s\n", "nodes", "per-rank need",
              "capacity", "utilization", "fits?");
  for (int n = 1; n <= 128; n *= 2) {
    const auto machine = perfmodel::nl03c_machine(n);
    try {
      const auto p = perfmodel::plan_cgyro(in, machine);
      std::printf("%-8d %-14s %-14s %-12.2f %s\n", n,
                  human_bytes(p.fit.required_bytes).c_str(),
                  human_bytes(p.fit.available_bytes).c_str(),
                  p.fit.utilization, p.fit.fits ? "yes" : "NO");
    } catch (const Error&) {
      std::printf("%-8d no valid decomposition\n", n);
    }
  }
  const int min_nodes = perfmodel::min_feasible_nodes_cgyro(in, 128);
  std::printf("minimum nodes for one CGYRO simulation: %d   (paper: 32)\n\n",
              min_nodes);

  // --- §2.1: ensemble sharing -------------------------------------------------
  std::printf("per-rank cmat slice vs ensemble size (8 ranks/node, 32 nodes "
              "total, ranks split across k members):\n");
  std::printf("%-6s %-12s %-16s %-16s %s\n", "k", "ranks/sim", "cmat/rank",
              "others/rank", "fits 32 nodes?");
  for (const int k : {1, 2, 4, 8, 16}) {
    const auto machine = perfmodel::nl03c_machine(32);
    if (machine.total_ranks() % k != 0) continue;
    try {
      const auto p = perfmodel::plan_xgyro(in, k, machine);
      const auto pinv =
          gyro::Simulation::memory_inventory(in, p.decomp, k);
      std::printf("%-6d %-12d %-16s %-16s %s\n", k, p.ranks_per_sim,
                  human_bytes(pinv.bytes_of("cmat")).c_str(),
                  human_bytes(pinv.total_excluding("cmat")).c_str(),
                  p.fit.fits ? "yes" : "NO");
    } catch (const Error& e) {
      std::printf("%-6d (no decomposition: %s)\n", k, e.what());
    }
  }
  std::printf("\ntotal cmat bytes across the job are k-invariant: one shared "
              "copy (paper §2.1).\n");
  return (ratio > 8.0 && min_nodes == 32) ? 0 : 1;
}
