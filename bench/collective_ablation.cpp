// Ablation: AllReduce algorithm choice (recursive doubling vs ring) across
// payload sizes on the simulated network — the crossover that justifies the
// kAuto switch in simmpi (and that real MPI libraries implement). Also
// times the pairwise AllToAll used by the str↔coll transpose.
#include <benchmark/benchmark.h>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simnet/machine.hpp"

namespace {

using xg::mpi::AllReduceAlg;

void run_allreduce(benchmark::State& state, AllReduceAlg alg) {
  const int p = static_cast<int>(state.range(0));
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(1));
  const auto spec = xg::net::frontier_like((p + 7) / 8);
  double virt = 0.0;
  for (auto _ : state) {
    const auto res = xg::mpi::run_simulation(
        spec, p,
        [&](xg::mpi::Proc& proc) { proc.world().allreduce_virtual(bytes, alg); });
    virt = res.makespan_s;
  }
  state.counters["virtual_us"] = virt * 1e6;
}

void BM_AllReduceRecursiveDoubling(benchmark::State& state) {
  run_allreduce(state, AllReduceAlg::kRecursiveDoubling);
}
void BM_AllReduceRing(benchmark::State& state) {
  run_allreduce(state, AllReduceAlg::kRing);
}

void BM_AllToAllPairwise(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::uint64_t bytes_per_pair = static_cast<std::uint64_t>(state.range(1));
  const auto spec = xg::net::frontier_like((p + 7) / 8);
  double virt = 0.0;
  for (auto _ : state) {
    const auto res = xg::mpi::run_simulation(
        spec, p,
        [&](xg::mpi::Proc& proc) { proc.world().alltoall_virtual(bytes_per_pair); });
    virt = res.makespan_s;
  }
  state.counters["virtual_us"] = virt * 1e6;
}

}  // namespace

BENCHMARK(BM_AllReduceRecursiveDoubling)
    ->ArgsProduct({{4, 16}, {1024, 64 * 1024, 1024 * 1024}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllReduceRing)
    ->ArgsProduct({{4, 16}, {1024, 64 * 1024, 1024 * 1024}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllToAllPairwise)
    ->ArgsProduct({{4, 16, 32}, {4096, 256 * 1024}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
