#!/usr/bin/env bash
# docs_check.sh BUILD_DIR
#
# Keeps docs/USER_GUIDE.md and the binaries consistent, both ways:
#
#   1. Flag parity: every --flag printed by `xgyro_cli --help` must appear
#      in the guide's marked reference block, and every --flag in the block
#      must exist in --help (same for xgyro_report's usage text,
#      xgyro_bench_check --help, xgyro_colltune --help, xgyro_serve --help,
#      and xgyro_servemon --help).
#   2. Every `sh`-tagged fenced command block in the guide parses
#      (bash -n) and — unless its first line marks it as a build step —
#      executes successfully, in order, in a scratch directory with the
#      built binaries on PATH and examples/inputs copied in.
#   3. CLI error paths: duplicate flags, malformed numbers, and conflicting
#      combinations exit 1 with a single-line diagnostic; --help exits 0;
#      xgyro_serve additionally exits 2 (not 1) when admitted requests
#      fail, per its documented 0/1/2 convention, and xgyro_servemon
#      exits 1 on missing/corrupt logs and bad SLO grammar.
#
# Registered with ctest as `docs_consistency_check` and run as gate 5 of
# ci.sh. Run from the repository root.
set -euo pipefail

BUILD_DIR=${1:-build}
GUIDE=docs/USER_GUIDE.md
CLI="$BUILD_DIR/examples/xgyro_cli"
REPORT="$BUILD_DIR/examples/xgyro_report"
BENCH_CHECK="$BUILD_DIR/examples/xgyro_bench_check"
COLLTUNE="$BUILD_DIR/examples/xgyro_colltune"
SERVE="$BUILD_DIR/examples/xgyro_serve"
SERVEMON="$BUILD_DIR/examples/xgyro_servemon"
for f in "$GUIDE" "$CLI" "$REPORT" "$BENCH_CHECK" "$COLLTUNE" "$SERVE" \
         "$SERVEMON"; do
  if [[ ! -e "$f" ]]; then
    echo "docs_check: missing $f" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
fail() { echo "docs_check: $*" >&2; exit 1; }

extract_flags() {  # stdin -> sorted unique --flags
  grep -oE -- '--[a-z][a-z-]*' | sort -u
}

marker_block() {  # $1 = marker name -> lines between begin/end markers
  awk "/<!-- $1:begin -->/{f=1;next} /<!-- $1:end -->/{f=0} f" "$GUIDE"
}

# --- 1. flag parity, both directions -------------------------------------

"$CLI" --help > "$WORK/cli.help"
extract_flags < "$WORK/cli.help" > "$WORK/cli.help.flags"
marker_block xgyro_cli-flags | extract_flags > "$WORK/cli.guide.flags"
if ! diff -u "$WORK/cli.help.flags" "$WORK/cli.guide.flags" > "$WORK/cli.diff"; then
  cat "$WORK/cli.diff" >&2
  fail "xgyro_cli --help and $GUIDE disagree on the flag set (left: --help, right: guide)"
fi

"$REPORT" > "$WORK/report.help" 2>&1 || true   # usage text, nonzero exit
extract_flags < "$WORK/report.help" > "$WORK/report.help.flags"
marker_block xgyro_report-flags | extract_flags > "$WORK/report.guide.flags"
if ! diff -u "$WORK/report.help.flags" "$WORK/report.guide.flags" > "$WORK/report.diff"; then
  cat "$WORK/report.diff" >&2
  fail "xgyro_report usage and $GUIDE disagree on the flag set"
fi

"$BENCH_CHECK" --help > "$WORK/bench_check.help"
extract_flags < "$WORK/bench_check.help" > "$WORK/bench_check.help.flags"
marker_block xgyro_bench_check-flags | extract_flags \
  > "$WORK/bench_check.guide.flags"
if ! diff -u "$WORK/bench_check.help.flags" "$WORK/bench_check.guide.flags" \
    > "$WORK/bench_check.diff"; then
  cat "$WORK/bench_check.diff" >&2
  fail "xgyro_bench_check --help and $GUIDE disagree on the flag set"
fi

"$COLLTUNE" --help > "$WORK/colltune.help"
extract_flags < "$WORK/colltune.help" > "$WORK/colltune.help.flags"
marker_block xgyro_colltune-flags | extract_flags \
  > "$WORK/colltune.guide.flags"
if ! diff -u "$WORK/colltune.help.flags" "$WORK/colltune.guide.flags" \
    > "$WORK/colltune.diff"; then
  cat "$WORK/colltune.diff" >&2
  fail "xgyro_colltune --help and $GUIDE disagree on the flag set"
fi

"$SERVE" --help > "$WORK/serve.help"
extract_flags < "$WORK/serve.help" > "$WORK/serve.help.flags"
marker_block xgyro_serve-flags | extract_flags > "$WORK/serve.guide.flags"
if ! diff -u "$WORK/serve.help.flags" "$WORK/serve.guide.flags" \
    > "$WORK/serve.diff"; then
  cat "$WORK/serve.diff" >&2
  fail "xgyro_serve --help and $GUIDE disagree on the flag set"
fi

"$SERVEMON" --help > "$WORK/servemon.help"
extract_flags < "$WORK/servemon.help" > "$WORK/servemon.help.flags"
marker_block xgyro_servemon-flags | extract_flags \
  > "$WORK/servemon.guide.flags"
if ! diff -u "$WORK/servemon.help.flags" "$WORK/servemon.guide.flags" \
    > "$WORK/servemon.diff"; then
  cat "$WORK/servemon.diff" >&2
  fail "xgyro_servemon --help and $GUIDE disagree on the flag set"
fi

# --- 2. every sh fence parses; non-build fences execute -------------------

SCRATCH="$WORK/scratch"
mkdir -p "$SCRATCH/examples"
cp -r examples/inputs "$SCRATCH/examples/inputs"
BIN_PATH="$(cd "$BUILD_DIR" && pwd)/examples:$(cd "$BUILD_DIR" && pwd)/bench"

awk '/^```sh$/{f=1;n++;next} /^```$/{f=0} f{print n "\t" $0}' "$GUIDE" \
  > "$WORK/fences.tsv"
N_FENCES=$(cut -f1 "$WORK/fences.tsv" | sort -u | wc -l)
[[ "$N_FENCES" -ge 8 ]] || fail "expected >= 8 sh fences in $GUIDE, found $N_FENCES"

RUN_SCRIPT="$WORK/guide_commands.sh"
{
  echo "set -euo pipefail"
  echo "cd '$SCRATCH'"
  echo "export PATH='$BIN_PATH':\$PATH"
} > "$RUN_SCRIPT"
for i in $(cut -f1 "$WORK/fences.tsv" | sort -un); do
  FENCE="$WORK/fence.$i"
  awk -F'\t' -v i="$i" '$1 == i {sub(/^[0-9]+\t/, ""); print}' \
    "$WORK/fences.tsv" > "$FENCE"
  bash -n "$FENCE" || fail "sh fence #$i in $GUIDE does not parse"
  if head -1 "$FENCE" | grep -q "build step"; then
    continue  # parse-checked only; CI builds before running this script
  fi
  cat "$FENCE" >> "$RUN_SCRIPT"
done
bash "$RUN_SCRIPT" > "$WORK/guide.out" 2>&1 \
  || { cat "$WORK/guide.out" >&2; fail "a guide command failed (transcript above)"; }

# --- 3. documented error paths -------------------------------------------

expect_error() {  # $1 = description, rest = args; wants exit 1 + one stderr line
  local desc=$1; shift
  local rc=0
  "$CLI" "$@" > "$WORK/err.out" 2> "$WORK/err.err" || rc=$?
  [[ "$rc" -eq 1 ]] || fail "$desc: expected exit 1, got $rc"
  [[ "$(wc -l < "$WORK/err.err")" -eq 1 ]] \
    || { cat "$WORK/err.err" >&2; fail "$desc: expected a single-line diagnostic"; }
  grep -q "^xgyro_cli: " "$WORK/err.err" || fail "$desc: diagnostic not prefixed"
}

expect_error "duplicate flag"        --input x --ranks 2 --ranks 4
expect_error "malformed integer"     --input x --ranks abc
expect_error "malformed trailing"    --input x --ranks 4x
expect_error "input+ensemble"        --input x --ensemble y
expect_error "resume w/o ckpt dir"   --input x --resume
expect_error "ckpt in model mode"    --input x --checkpoint-dir d --mode model
expect_error "ckpt+legacy restart"   --input x --checkpoint-dir d --restart-read r
expect_error "unknown flag"          --input x --bogus
expect_error "bad intervals"         --input x --intervals 0
expect_error "tol w/o perfmodel"     --input x --perfmodel-tol 3.0
expect_error "tol below one"         --input x --perfmodel-check --perfmodel-tol 0.5
expect_error "malformed tol"         --input x --perfmodel-check --perfmodel-tol abc
expect_error "unknown selector"      --input x --coll-select quantum
expect_error "select+table"          --input x --coll-select legacy --coll-table t.json

"$CLI" --help > /dev/null || fail "--help must exit 0"

expect_serve_error() {  # $1 = description, rest = args; wants exit 1 + one line
  local desc=$1; shift
  local rc=0
  "$SERVE" "$@" > "$WORK/serve_err.out" 2> "$WORK/serve_err.err" || rc=$?
  [[ "$rc" -eq 1 ]] || fail "xgyro_serve $desc: expected exit 1, got $rc"
  [[ "$(wc -l < "$WORK/serve_err.err")" -eq 1 ]] \
    || { cat "$WORK/serve_err.err" >&2
         fail "xgyro_serve $desc: expected a single-line diagnostic"; }
  grep -q "^xgyro_serve: " "$WORK/serve_err.err" \
    || fail "xgyro_serve $desc: diagnostic not prefixed"
}

expect_serve_error "missing --gen"      --nodes 2
expect_serve_error "duplicate flag"     --gen "n=2" --nodes 2 --nodes 4
expect_serve_error "malformed integer"  --gen "n=2" --nodes abc
expect_serve_error "malformed number"   --gen "n=2" --window 1.5x
expect_serve_error "unknown flag"       --gen "n=2" --bogus
expect_serve_error "bad mode"           --gen "n=2" --mode fast
expect_serve_error "bad spec key"       --gen "banana=1"
expect_serve_error "bad spec value"     --gen "kills=2.0"
expect_serve_error "ckpt in model mode" --gen "n=2" --mode model --checkpoint-dir d

"$SERVE" --help > /dev/null || fail "xgyro_serve --help must exit 0"

# Exit 2 is reserved for admitted-but-failed requests: every request carries
# a kill on a single-node cluster, so no job can recover.
rc=0
"$SERVE" --gen "seed=1;n=2;rate=5;kills=1" --nodes 1 --ranks-per-node 2 \
  --checkpoint-dir "$WORK/serve_ckpt" > /dev/null 2> "$WORK/serve2.err" || rc=$?
[[ "$rc" -eq 2 ]] || fail "xgyro_serve failed-requests path: expected exit 2, got $rc"
grep -q "^xgyro_serve: " "$WORK/serve2.err" \
  || fail "xgyro_serve failed-requests path: diagnostic not prefixed"

# Observability flags need the event sink; SLO/metrics grammar fails fast.
expect_serve_error "slo w/o events"       --gen "n=2" --slo "wait=10"
expect_serve_error "metrics w/o events"   --gen "n=2" --metrics-every 1
expect_serve_error "bad slo grammar"      --gen "n=2" \
  --events-out "$WORK/ev.jsonl" --slo "banana=1"
expect_serve_error "negative metrics"     --gen "n=2" \
  --events-out "$WORK/ev.jsonl" --metrics-every -1

# Production-stream flags: the audit knobs bind to --fast-path, the
# adaptive window needs a window to adapt.
expect_serve_error "audit-frac w/o fast-path" --gen "n=2" --audit-frac 0.5
expect_serve_error "audit-frac above one"     --gen "n=2" \
  --fast-path --audit-frac 1.5
expect_serve_error "negative audit-frac"      --gen "n=2" \
  --fast-path --audit-frac -0.1
expect_serve_error "negative audit-seed"      --gen "n=2" \
  --fast-path --audit-seed -1
expect_serve_error "window-auto w/o batching" --gen "n=2" \
  --no-batching --window-auto
expect_serve_error "window-auto w/o window"   --gen "n=2" \
  --window 0 --window-auto

expect_servemon_error() {  # $1 = description, rest = args; wants exit 1 + one line
  local desc=$1; shift
  local rc=0
  "$SERVEMON" "$@" > "$WORK/mon_err.out" 2> "$WORK/mon_err.err" || rc=$?
  [[ "$rc" -eq 1 ]] || fail "xgyro_servemon $desc: expected exit 1, got $rc"
  [[ "$(wc -l < "$WORK/mon_err.err")" -eq 1 ]] \
    || { cat "$WORK/mon_err.err" >&2
         fail "xgyro_servemon $desc: expected a single-line diagnostic"; }
  grep -q "^xgyro_servemon: " "$WORK/mon_err.err" \
    || fail "xgyro_servemon $desc: diagnostic not prefixed"
}

printf '{"not":"an event log"}\n' > "$WORK/bad.events.jsonl"
expect_servemon_error "missing --events"  --summary
expect_servemon_error "duplicate flag"    --events a --events b
expect_servemon_error "unreadable log"    --events "$WORK/nope.jsonl"
expect_servemon_error "invalid log"       --events "$WORK/bad.events.jsonl"
expect_servemon_error "bad window"        --events a --window -1
expect_servemon_error "bad slo grammar"   --events a --slo "wait=-5"
expect_servemon_error "unknown flag"      --events a --bogus

"$SERVEMON" --help > /dev/null || fail "xgyro_servemon --help must exit 0"

echo "docs_check: $N_FENCES guide fences and all six flag references verified"
