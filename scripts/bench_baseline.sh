#!/usr/bin/env bash
# bench_baseline.sh BUILD_DIR [OUT_DIR]
#
# (Re-)record the benchmark baselines gated by xgyro_bench_check: run each
# bench in its canonical baseline configuration, wrap the JSON payload in a
# BENCH_<name>.json document (schema xgyro.bench_baseline), and write it to
# OUT_DIR (default: repo root, where `xgyro_bench_check --smoke .` and the
# ci gate pick them up).
#
# DES benches (node_scaling, ensemble_scaling, campaign_service) report
# virtual seconds and are bit-deterministic, so the default 2% tolerance
# gates every metric. collision_apply_bench measures wall-clock rates;
# those are --ignore'd so the baseline stays machine-independent while the
# configuration (nv, n_cells, k values) is still gated. campaign_service's
# queue-wait percentiles get a looser 5% suffix tolerance (--tol-for on the
# dotted paths): a percentile jumps discretely when any single request's
# wait crosses it, so a benign scheduling change moves p99 further than the
# aggregate throughput it gates alongside (the suffix match covers the
# scale study's per-arm percentiles too). Its observability arm records
# wall-clock overhead numbers that are likewise --ignore'd (the <2% gate
# lives in the bench binary itself); the deterministic event-record census
# stays gated, as are the scale study's throughput, audit worst-ratio, and
# starvation-peak numbers (all virtual-time, bit-deterministic — only the
# production arm's wall_production_ms is machine-dependent).
#
# Recording refuses baselines that fail their own self-test (identity must
# pass, a +10% perturbation must be detected), so anything this script
# writes is a working regression gate. Compare a fresh run with:
#   node_scaling --steps 2 --json candidate.json
#   xgyro_bench_check BENCH_node_scaling.json candidate.json
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-.}
BENCH="$BUILD_DIR/bench"
CHECK="$BUILD_DIR/examples/xgyro_bench_check"
for bin in "$BENCH/node_scaling" "$BENCH/ensemble_scaling" \
           "$BENCH/allreduce_scaling" "$BENCH/collision_apply_bench" \
           "$BENCH/campaign_service" "$CHECK"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_baseline: missing binary $bin" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Canonical baseline configurations. --steps 2 keeps the DES sweeps to
# seconds; virtual-time results are step-proportional, so a reduced step
# count loses no regression-detection power.
"$BENCH/node_scaling" --steps 2 --json "$WORK/node_scaling.json" \
  > "$WORK/node_scaling.out"
"$BENCH/ensemble_scaling" --steps 2 --json "$WORK/ensemble_scaling.json" \
  > "$WORK/ensemble_scaling.out"
"$BENCH/collision_apply_bench" > "$WORK/collision_apply.json"
# Full sweep (32..256 nodes, tuned selector vs legacy algorithms): the
# recorded speedups gate the selector's win itself.
"$BENCH/allreduce_scaling" --json "$WORK/allreduce_scaling.json" \
  > "$WORK/allreduce_scaling.out"
# Online service vs no-batching ablation on the paper's 32-node machine,
# plus the 10⁵-request fast-path scale study and its two ablations: the
# recorded speedup gates the batching win, and the recorded scale arms gate
# the backfilling and adaptive-window wins (the full stream takes ~1 min of
# wall clock — the DES only touches the ~1% audited slice).
"$BENCH/campaign_service" --json "$WORK/campaign_service.json" \
  > "$WORK/campaign_service.out"

"$CHECK" --record node_scaling \
  --payload "$WORK/node_scaling.json" \
  --out "$OUT_DIR/BENCH_node_scaling.json"
"$CHECK" --record ensemble_scaling \
  --payload "$WORK/ensemble_scaling.json" \
  --out "$OUT_DIR/BENCH_ensemble_scaling.json"
"$CHECK" --record allreduce_scaling \
  --payload "$WORK/allreduce_scaling.json" \
  --out "$OUT_DIR/BENCH_allreduce_scaling.json"
"$CHECK" --record collision_apply \
  --payload "$WORK/collision_apply.json" \
  --ignore cells_per_s --ignore speedup \
  --out "$OUT_DIR/BENCH_collision_apply.json"
"$CHECK" --record campaign_service \
  --payload "$WORK/campaign_service.json" \
  --tol-for queue_wait_s.p50=0.05 \
  --tol-for queue_wait_s.p95=0.05 \
  --tol-for queue_wait_s.p99=0.05 \
  --ignore overhead_pct --ignore wall_plain_ms --ignore wall_observed_ms \
  --ignore wall_production_ms \
  --out "$OUT_DIR/BENCH_campaign_service.json"

"$CHECK" --smoke "$OUT_DIR"
echo "bench_baseline: baselines recorded to $OUT_DIR"
