#!/usr/bin/env bash
# trace_smoke.sh BUILD_DIR
#
# End-to-end smoke test of the telemetry artifacts: run xgyro_cli with all
# three outputs (--trace-out / --report / --metrics-out), validate the
# Chrome trace with `xgyro_report --validate-trace`, diff a CGYRO baseline
# report against the ensemble report (`xgyro_report --json`), check the
# metrics schema header, and require a clean non-zero exit for an
# unwritable artifact path. Registered with ctest as `trace_export_smoke`.
set -euo pipefail

BUILD_DIR=${1:-build}
CLI="$BUILD_DIR/examples/xgyro_cli"
REPORT="$BUILD_DIR/examples/xgyro_report"
for bin in "$CLI" "$REPORT"; do
  if [[ ! -x "$bin" ]]; then
    echo "trace_smoke: missing binary $bin" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Ensemble run with all three telemetry artifacts.
"$CLI" --ensemble examples/inputs/input.xgyro --ranks-per-sim 2 --intervals 1 \
       --trace-out "$WORK/trace.json" \
       --report "$WORK/xgyro.report.json" \
       --metrics-out "$WORK/metrics.json" > "$WORK/xgyro.stdout"

# CGYRO baseline run of the first member for the diff.
"$CLI" --input examples/inputs/member_a/input.cgyro --ranks 2 --intervals 1 \
       --report "$WORK/cgyro.report.json" > "$WORK/cgyro.stdout"

# The trace must be a valid Chrome trace document with per-rank tracks —
# and a non-empty one: a schema-valid file with zero complete events (or
# zero collective instances) means the exporter silently dropped the run,
# which "trace ok" alone would wave through.
"$REPORT" --validate-trace "$WORK/trace.json" | tee "$WORK/validate.out"
if grep -Eq "0 complete event|0 collective instance" "$WORK/validate.out"; then
  echo "trace_smoke: trace validated but is empty (zero rows)" >&2
  exit 1
fi

# Diffing the two reports prints the Fig. 2-style table + regression deltas.
"$REPORT" --json "$WORK/cgyro.report.json" "$WORK/xgyro.report.json" 4 \
  > "$WORK/diff.out"
grep -q "Fig. 2-style reduction" "$WORK/diff.out"
grep -q "regression deltas" "$WORK/diff.out"

# Schema-versioned artifacts.
grep -q '"schema": "xgyro.metrics"' "$WORK/metrics.json"
grep -q '"schema": "xgyro.report"' "$WORK/xgyro.report.json"
grep -q '"schema": "xgyro.trace"' "$WORK/trace.json"

# An unwritable artifact path must fail cleanly (xg::Error, exit 1), not
# crash or silently succeed.
if "$CLI" --input examples/inputs/member_a/input.cgyro --ranks 2 \
          --trace-out /nonexistent-dir-xg/t.json > "$WORK/unwritable.out" 2>&1
then
  echo "trace_smoke: unwritable --trace-out path did not fail" >&2
  exit 1
fi
grep -q "xgyro_cli: cannot open" "$WORK/unwritable.out"

echo "trace_smoke: telemetry artifacts validated"
