#!/usr/bin/env bash
# check_determinism.sh BUILD_DIR
#
# End-to-end determinism check for the simulated runtime: run the same
# fault-injected ensemble job twice through xgyro_cli with an identical
# seed and require bitwise-identical stdout and timing logs. Any
# nondeterminism in the schedule, the fault layer, or the accounting
# shows up as a diff and fails the check (registered with ctest as
# `check_determinism_script`).
set -euo pipefail

BUILD_DIR=${1:-build}
CLI="$BUILD_DIR/examples/xgyro_cli"
if [[ ! -x "$CLI" ]]; then
  echo "check_determinism: missing binary $CLI" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

FAULTS="seed=7;straggler=1x1.5;jitter=1x0.25;delay=0.2x2e-5"
run() {
  # The "timing log written to <path>" line names the per-run temp file;
  # drop it so the diff sees only schedule/accounting output.
  "$CLI" --ensemble examples/inputs/input.xgyro \
         --ranks-per-sim 2 --intervals 1 \
         --faults "$FAULTS" \
         --timing-out "$WORK/$1.timing" \
    | grep -v '^timing log written to ' > "$WORK/$1.stdout"
}

run a
run b

fail=0
if ! diff -u "$WORK/a.stdout" "$WORK/b.stdout"; then
  echo "check_determinism: stdout differs between identical-seed runs" >&2
  fail=1
fi
if ! diff -u "$WORK/a.timing" "$WORK/b.timing"; then
  echo "check_determinism: timing log differs between identical-seed runs" >&2
  fail=1
fi

# The fault layer must actually have injected something, or the check
# proves nothing about fault-path determinism.
if ! grep -q "fault injection:" "$WORK/a.stdout"; then
  echo "check_determinism: no fault-injection summary in output" >&2
  fail=1
fi

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_determinism: identical-seed runs are bitwise identical"
