#!/usr/bin/env bash
# servemon_smoke.sh EXAMPLES_DIR
#
# End-to-end smoke test of the service observability pipeline: run
# xgyro_serve with a streamed event log + periodic monitor snapshots + an
# SLO, then drive xgyro_servemon over the log (--validate, --summary with
# the sketch-vs-exact cross-check, --trace-out into the Chrome trace
# validator's schema), check event-log determinism across two identical
# runs, and require that an aborted run still leaves a schema-valid
# partial log ending in service.aborted. Registered with ctest as
# `servemon_smoke` (ci.sh gate 9).
set -euo pipefail

EXAMPLES_DIR=${1:-build/examples}
SERVE="$EXAMPLES_DIR/xgyro_serve"
MON="$EXAMPLES_DIR/xgyro_servemon"
REPORT="$EXAMPLES_DIR/xgyro_report"
for bin in "$SERVE" "$MON"; do
  if [[ ! -x "$bin" ]]; then
    echo "servemon_smoke: missing binary $bin" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

GEN="seed=7;n=12;rate=2;tenants=2;sigs=2;prios=2"

# A full service run with the whole observability plane on.
"$SERVE" --gen "$GEN" --nodes 2 --ranks-per-node 4 --window 0.5 \
         --events-out "$WORK/serve.events.jsonl" --metrics-every 1 \
         --slo "wait=1e5;target=0.5;burn=100" \
         > "$WORK/serve.stdout"
grep -q "event log written to" "$WORK/serve.stdout"

# The log must validate (legal state machines, exactly-once terminals)
# and end cleanly.
"$MON" --events "$WORK/serve.events.jsonl" --validate | tee "$WORK/validate.out"
grep -q "validation: OK" "$WORK/validate.out"
grep -q "service.end" "$WORK/validate.out"
grep -q "monitor.snapshot" "$WORK/validate.out"

# The replayed sketches must reproduce the recorded exact percentiles, the
# calibration gate must hold, and the (deliberately lax) SLO must not burn.
"$MON" --events "$WORK/serve.events.jsonl" --summary \
       --slo "wait=1e5;target=0.5;burn=100" --json "$WORK/servemon.json" \
       | tee "$WORK/summary.out"
grep -q "sketch agrees" "$WORK/summary.out"
grep -q "calibrated" "$WORK/summary.out"
grep -q '"schema": "xgyro.servemon"' "$WORK/servemon.json"

# The trace view must be a valid Chrome trace document (when xgyro_report
# is built alongside, validate it for real).
"$MON" --events "$WORK/serve.events.jsonl" --trace-out "$WORK/trace.json" \
       > /dev/null
grep -q '"schema": "xgyro.trace"' "$WORK/trace.json"
if [[ -x "$REPORT" ]]; then
  "$REPORT" --validate-trace "$WORK/trace.json" > /dev/null
fi

# Determinism: two identical runs must produce byte-identical logs.
"$SERVE" --gen "$GEN" --nodes 2 --ranks-per-node 4 --window 0.5 \
         --events-out "$WORK/serve2.events.jsonl" --metrics-every 1 \
         --slo "wait=1e5;target=0.5;burn=100" > /dev/null
cmp "$WORK/serve.events.jsonl" "$WORK/serve2.events.jsonl"

# Abort path: an unwritable checkpoint root fails the run (exit 1) midway,
# and the flushed partial log must still validate, ending in
# service.aborted.
if "$SERVE" --gen "$GEN" --nodes 2 --ranks-per-node 4 --window 0.5 \
            --checkpoint-dir /proc/xg-no-such-dir \
            --events-out "$WORK/aborted.events.jsonl" \
            > "$WORK/aborted.stdout" 2>&1; then
  echo "servemon_smoke: unwritable checkpoint dir did not fail the run" >&2
  exit 1
fi
"$MON" --events "$WORK/aborted.events.jsonl" --validate \
  | tee "$WORK/aborted.validate.out"
grep -q "ABORTED RUN" "$WORK/aborted.validate.out"
grep -q "validation: OK" "$WORK/aborted.validate.out"

# A corrupted log (duplicate record) must be rejected with a clean exit 1.
head -n 5 "$WORK/serve.events.jsonl" > "$WORK/corrupt.events.jsonl"
sed -n '5p' "$WORK/serve.events.jsonl" >> "$WORK/corrupt.events.jsonl"
if "$MON" --events "$WORK/corrupt.events.jsonl" --validate \
     > "$WORK/corrupt.out" 2>&1; then
  echo "servemon_smoke: duplicate record was not rejected" >&2
  exit 1
fi
grep -q "duplicate, gap, or out-of-order" "$WORK/corrupt.out"

echo "servemon_smoke: observability pipeline validated"
