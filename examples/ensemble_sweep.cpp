// Ensemble sweep: the XGYRO workflow on a real (small-grid) computation.
//
// A four-member temperature-gradient scan — the classic fusion parameter
// sweep whose members share every cmat-relevant parameter — runs as a
// single simulated HPC job with one distributed copy of the collisional
// constant tensor. Each member reports its own transport proxy, and the
// job prints the memory the sharing saved.
//
//   $ ./examples/ensemble_sweep
#include <cstdio>
#include <mutex>
#include <vector>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/ensemble.hpp"

int main() {
  using namespace xg;

  gyro::Input base = gyro::Input::small_test(2);
  base.n_radial = 8;
  base.n_steps_per_report = 10;

  const int k = 4;
  const auto ensemble = xgyro::EnsembleInput::sweep(
      base, k, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 1.5 + 0.75 * i;  // the scan parameter
        in.tag = strprintf("aLT=%.2f", in.species[0].a_ln_t);
      });
  std::printf("ensemble of %d members sharing cmat (fingerprint %016llx)\n\n",
              k,
              static_cast<unsigned long long>(
                  ensemble.members[0].cmat_fingerprint()));

  const int ranks_per_sim = 4;
  const auto decomp =
      gyro::Decomposition::choose(base, ranks_per_sim, k);
  const auto machine = net::frontier_like(2);

  struct Row {
    std::string tag;
    gyro::Diagnostics diag;
    std::uint64_t cmat_bytes;
  };
  std::vector<Row> rows(static_cast<size_t>(k));
  std::mutex mu;

  mpi::run_simulation(machine, k * ranks_per_sim, [&](mpi::Proc& p) {
    xgyro::EnsembleDriver driver(ensemble, decomp, p, gyro::Mode::kReal);
    driver.initialize();
    gyro::Diagnostics d;
    for (int i = 0; i < 2; ++i) d = driver.advance_report_interval();
    if (p.world_rank() % decomp.nranks() == 0) {
      const std::scoped_lock lock(mu);
      rows[driver.sim_index()] = {
          ensemble.members[driver.sim_index()].tag, d,
          driver.simulation().cmat().bytes()};
    }
  });

  std::printf("%-12s %14s %14s %16s\n", "member", "phi_rms", "flux proxy",
              "cmat slice/rank");
  for (const auto& row : rows) {
    std::printf("%-12s %14.6e %14.6e %16s\n", row.tag.c_str(),
                row.diag.phi_rms, row.diag.flux_proxy,
                human_bytes(static_cast<double>(row.cmat_bytes)).c_str());
  }

  const auto shared = gyro::Simulation::memory_inventory(base, decomp, k);
  const auto unshared = gyro::Simulation::memory_inventory(base, decomp, 1);
  std::printf("\ncmat per rank: %s shared vs %s if every member kept its own "
              "copy (%dx saving, paper §2.1)\n",
              human_bytes(shared.bytes_of("cmat")).c_str(),
              human_bytes(unshared.bytes_of("cmat")).c_str(), k);
  return 0;
}
