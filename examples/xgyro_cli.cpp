// xgyro_cli — run CGYRO-style input files through the simulated machine,
// standalone or as an XGYRO ensemble, from the command line.
//
//   # one simulation (CGYRO layout)
//   ./examples/xgyro_cli --input examples/inputs/small.cgyro --ranks 4
//
//   # an ensemble sharing cmat (XGYRO layout; repeat --input per member,
//   # or point --ensemble at an input.xgyro manifest)
//   ./examples/xgyro_cli --ensemble examples/inputs/input.xgyro
//                        --ranks-per-sim 4 --intervals 2
//                        --timing-out out.xgyro.timing
//
// Options:
//   --input FILE        input file (repeat for an ensemble)
//   --ensemble FILE     input.xgyro-style manifest (N_SIM / DIR_i keys)
//   --ranks N           total ranks for a single simulation   [default 4]
//   --ranks-per-sim N   ranks per ensemble member             [default 4]
//   --nodes N           nodes of the Frontier-like machine    [default: fit]
//   --mode real|model   real data or paper-scale model mode   [default real]
//   --intervals N       reporting intervals to run            [default 1]
//   --timing-out FILE   write an out.xgyro.timing-style log
//   --grouped           allow mixed physics: members grouped by cmat
//                       fingerprint, one shared tensor per group
//   --restart-write DIR write binary checkpoints after the run (real mode)
//   --restart-read DIR  resume from checkpoints before the run (real mode)
//   --faults SPEC       deterministic fault injection, e.g.
//                       "seed=42;straggler=2x3.0;delay=0.3x5e-6;kill=1@0.02"
//                       (see src/simmpi/fault.hpp for the full grammar)
//   --watchdog SECONDS  deadlock watchdog timeout (real time; 0 disables)
//   --no-invariants     disable the per-collective invariant monitor
//   --trace-out FILE    write a Chrome trace-event JSON timeline (open with
//                       ui.perfetto.dev or chrome://tracing)
//   --report FILE       write a structured run report (xgyro.report JSON;
//                       diff two with `xgyro_report --json A B`)
//   --metrics-out FILE  write a metrics snapshot (counters/gauges/histograms)
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "gyro/restart.hpp"
#include "gyro/simulation.hpp"
#include "gyro/timing_log.hpp"
#include "simnet/machine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

namespace {

struct Options {
  std::vector<std::string> inputs;
  std::string manifest;
  int ranks = 4;
  int ranks_per_sim = 4;
  int nodes = 0;  // 0 = derive from rank count
  xg::gyro::Mode mode = xg::gyro::Mode::kReal;
  int intervals = 1;
  std::string timing_out;
  std::string trace_out;
  std::string report_out;
  std::string metrics_out;
  bool grouped = false;
  std::string restart_write, restart_read;
  xg::mpi::FaultPlan faults;
  double watchdog_timeout_s = 60.0;
  bool check_invariants = true;
};

Options parse_args(int argc, char** argv) {
  Options o;
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      throw xg::InputError(xg::strprintf("missing value after %s", argv[i]));
    }
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--input") {
      o.inputs.push_back(need_value(i++));
    } else if (a == "--ensemble") {
      o.manifest = need_value(i++);
    } else if (a == "--ranks") {
      o.ranks = std::stoi(need_value(i++));
    } else if (a == "--ranks-per-sim") {
      o.ranks_per_sim = std::stoi(need_value(i++));
    } else if (a == "--nodes") {
      o.nodes = std::stoi(need_value(i++));
    } else if (a == "--intervals") {
      o.intervals = std::stoi(need_value(i++));
    } else if (a == "--timing-out") {
      o.timing_out = need_value(i++);
    } else if (a == "--trace-out") {
      o.trace_out = need_value(i++);
    } else if (a == "--report") {
      o.report_out = need_value(i++);
    } else if (a == "--metrics-out") {
      o.metrics_out = need_value(i++);
    } else if (a == "--grouped") {
      o.grouped = true;
    } else if (a == "--restart-write") {
      o.restart_write = need_value(i++);
    } else if (a == "--restart-read") {
      o.restart_read = need_value(i++);
    } else if (a == "--faults") {
      o.faults = xg::mpi::FaultPlan::parse(need_value(i++));
    } else if (a == "--watchdog") {
      o.watchdog_timeout_s = std::stod(need_value(i++));
    } else if (a == "--no-invariants") {
      o.check_invariants = false;
    } else if (a == "--mode") {
      const std::string m = need_value(i++);
      if (m == "real") {
        o.mode = xg::gyro::Mode::kReal;
      } else if (m == "model") {
        o.mode = xg::gyro::Mode::kModel;
      } else {
        throw xg::InputError("--mode must be 'real' or 'model'");
      }
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: xgyro_cli (--input FILE [--input FILE ...] | --ensemble "
          "FILE) [options]\n\n"
          "  --input FILE        input file (repeat for an ensemble)\n"
          "  --ensemble FILE     input.xgyro-style manifest (N_SIM / DIR_i)\n"
          "  --ranks N           total ranks for a single simulation [4]\n"
          "  --ranks-per-sim N   ranks per ensemble member [4]\n"
          "  --nodes N           nodes of the Frontier-like machine [fit]\n"
          "  --mode real|model   real data or paper-scale model mode [real]\n"
          "  --intervals N       reporting intervals to run [1]\n"
          "  --timing-out FILE   write an out.xgyro.timing-style log\n"
          "  --trace-out FILE    write a Chrome trace-event JSON timeline\n"
          "                      (open with ui.perfetto.dev or "
          "chrome://tracing)\n"
          "  --report FILE       write a structured run report "
          "(xgyro.report JSON)\n"
          "  --metrics-out FILE  write a metrics snapshot "
          "(xgyro.metrics JSON)\n"
          "  --grouped           allow mixed physics: members grouped by\n"
          "                      cmat fingerprint, one shared tensor each\n"
          "  --restart-write DIR write binary checkpoints after the run\n"
          "  --restart-read DIR  resume from checkpoints before the run\n"
          "  --faults SPEC       deterministic fault injection, e.g.\n"
          "                      "
          "\"seed=42;straggler=2x3.0;delay=0.3x5e-6;kill=1@0.02\"\n"
          "  --watchdog SECONDS  deadlock watchdog timeout (0 disables)\n"
          "  --no-invariants     disable the collective invariant monitor\n");
      std::exit(0);
    } else {
      throw xg::InputError(xg::strprintf("unknown option '%s'", a.c_str()));
    }
  }
  if (o.inputs.empty() && o.manifest.empty()) {
    throw xg::InputError("need --input FILE (repeatable) or --ensemble FILE");
  }
  if (!o.inputs.empty() && !o.manifest.empty()) {
    throw xg::InputError("--input and --ensemble are mutually exclusive");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  try {
    const Options opt = parse_args(argc, argv);
    xgyro::EnsembleInput manifest_ensemble;
    if (!opt.manifest.empty()) {
      manifest_ensemble =
          xgyro::EnsembleInput::load_manifest(opt.manifest, !opt.grouped);
    }
    const int n_members = !opt.manifest.empty()
                              ? manifest_ensemble.n_sims()
                              : static_cast<int>(opt.inputs.size());
    const bool ensemble_mode = n_members > 1;
    const int total_ranks =
        ensemble_mode ? opt.ranks_per_sim * n_members : opt.ranks;
    const int nodes = opt.nodes > 0 ? opt.nodes : (total_ranks + 7) / 8;
    const auto machine = net::frontier_like(nodes);
    XG_REQUIRE(machine.total_ranks() >= total_ranks,
               "not enough nodes for the requested rank count");

    mpi::RuntimeOptions ropts;
    ropts.faults = opt.faults;
    ropts.check_invariants = opt.check_invariants;
    ropts.watchdog_timeout_s = opt.watchdog_timeout_s;
    // Telemetry artifacts need the trace stream; the report and metrics also
    // aggregate the traffic matrix. Both stay off unless requested.
    ropts.enable_trace = !opt.trace_out.empty() || !opt.report_out.empty() ||
                         !opt.metrics_out.empty();
    ropts.enable_traffic = !opt.report_out.empty() || !opt.metrics_out.empty();
    if (opt.faults.active()) {
      std::printf("%s\n", opt.faults.describe().c_str());
    }

    mpi::RunResult result;
    struct MemberReport {
      std::string tag;
      gyro::Diagnostics diag;
    };
    std::vector<MemberReport> reports;
    std::mutex mu;

    if (ensemble_mode) {
      const auto ensemble =
          !opt.manifest.empty()
              ? manifest_ensemble
              : xgyro::EnsembleInput::load(opt.inputs, !opt.grouped);
      std::printf("XGYRO: %d members x %d ranks on %d node(s), %s mode\n",
                  ensemble.n_sims(), opt.ranks_per_sim, nodes,
                  opt.mode == gyro::Mode::kReal ? "real" : "model");
      const auto decomp = gyro::Decomposition::choose(
          ensemble.members.front(), opt.ranks_per_sim, ensemble.n_sims());
      reports.resize(static_cast<size_t>(ensemble.n_sims()));
      result = mpi::run_simulation(machine, total_ranks, [&](mpi::Proc& p) {
        xgyro::EnsembleDriver driver(
            ensemble, decomp, p, opt.mode,
            opt.grouped ? xgyro::SharingPolicy::kGroupByFingerprint
                        : xgyro::SharingPolicy::kSingleGroup);
        driver.initialize();
        if (!opt.restart_read.empty()) {
          gyro::read_restart(opt.restart_read, driver.simulation());
        }
        gyro::Diagnostics d;
        for (int i = 0; i < opt.intervals; ++i) {
          d = driver.advance_report_interval();
        }
        if (!opt.restart_write.empty()) {
          gyro::write_restart(opt.restart_write, driver.simulation());
        }
        if (p.world_rank() % decomp.nranks() == 0) {
          const std::scoped_lock lock(mu);
          reports[driver.sim_index()] = {
              ensemble.members[driver.sim_index()].tag, d};
        }
      }, ropts);
    } else {
      const auto input = !opt.manifest.empty()
                             ? manifest_ensemble.members.front()
                             : gyro::Input::load(opt.inputs.front());
      std::printf("CGYRO: '%s' on %d ranks / %d node(s), %s mode\n",
                  input.tag.c_str(), total_ranks, nodes,
                  opt.mode == gyro::Mode::kReal ? "real" : "model");
      const auto decomp = gyro::Decomposition::choose(input, total_ranks);
      reports.resize(1);
      result = mpi::run_simulation(machine, total_ranks, [&](mpi::Proc& p) {
        auto layout = gyro::make_cgyro_layout(p.world(), decomp);
        gyro::Simulation sim(input, decomp, std::move(layout), p, opt.mode);
        sim.initialize();
        if (!opt.restart_read.empty()) gyro::read_restart(opt.restart_read, sim);
        gyro::Diagnostics d;
        for (int i = 0; i < opt.intervals; ++i) {
          d = sim.advance_report_interval();
        }
        if (!opt.restart_write.empty()) gyro::write_restart(opt.restart_write, sim);
        if (p.world_rank() == 0) {
          const std::scoped_lock lock(mu);
          reports[0] = {input.tag, d};
        }
      }, ropts);
    }

    std::printf("\n%-16s %8s %10s %14s %14s\n", "member", "steps", "time",
                "phi_rms", "flux_proxy");
    for (const auto& r : reports) {
      std::printf("%-16s %8d %10.3f %14.6e %14.6e\n", r.tag.c_str(),
                  r.diag.steps, r.diag.time, r.diag.phi_rms,
                  r.diag.flux_proxy);
    }
    std::printf("\n%s", gyro::format_timing(result, xgyro::solver_phases()).c_str());

    if (!result.fault_stats.empty()) {
      std::uint64_t delayed = 0;
      double delay_s = 0.0, straggle_s = 0.0;
      for (const auto& f : result.fault_stats) {
        delayed += f.delayed_msgs;
        delay_s += f.delay_added_s;
        straggle_s += f.straggler_added_s;
      }
      std::printf(
          "fault injection: %llu message(s) delayed (+%.3e s), straggler "
          "overhead +%.3e s; %llu collective(s) invariant-checked\n",
          static_cast<unsigned long long>(delayed), delay_s, straggle_s,
          static_cast<unsigned long long>(result.collectives_checked));
    }

    if (!opt.timing_out.empty()) {
      gyro::write_timing_log(
          opt.timing_out,
          gyro::timing_rows(result, xgyro::solver_phases()), result.makespan_s);
      std::printf("timing log written to %s\n", opt.timing_out.c_str());
    }
    if (!opt.trace_out.empty()) {
      telemetry::write_chrome_trace(opt.trace_out, result);
      std::printf("chrome trace written to %s (open with ui.perfetto.dev)\n",
                  opt.trace_out.c_str());
    }
    if (!opt.report_out.empty() || !opt.metrics_out.empty()) {
      const net::Placement placement(machine);
      if (!opt.report_out.empty()) {
        telemetry::write_run_report(
            opt.report_out,
            telemetry::build_run_report(result, placement,
                                        xgyro::solver_phases(),
                                        ensemble_mode ? "xgyro" : "cgyro",
                                        n_members));
        std::printf("run report written to %s\n", opt.report_out.c_str());
      }
      if (!opt.metrics_out.empty()) {
        telemetry::write_json_file(
            opt.metrics_out,
            telemetry::collect_run_metrics(result, placement).snapshot());
        std::printf("metrics written to %s\n", opt.metrics_out.c_str());
      }
    }
    return 0;
  } catch (const mpi::RankFailure& e) {
    std::fprintf(stderr, "xgyro_cli: structured rank failure\n");
    std::fprintf(stderr, "  rank   : %d\n", e.world_rank());
    std::fprintf(stderr, "  vtime  : %.9e s\n", e.virtual_time_s());
    std::fprintf(stderr, "  phase  : %s\n", e.phase().c_str());
    std::fprintf(stderr, "  detail : %s\n", e.what());
    return 2;
  } catch (const mpi::DeadlockError& e) {
    std::fprintf(stderr, "xgyro_cli: deadlock report (%zu blocked rank(s))\n",
                 e.blocked().size());
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_cli: %s\n", e.what());
    return 1;
  }
}
