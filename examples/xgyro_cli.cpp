// xgyro_cli — run CGYRO-style input files through the simulated machine,
// standalone or as an XGYRO ensemble, from the command line.
//
//   # one simulation (CGYRO layout)
//   ./examples/xgyro_cli --input examples/inputs/small.cgyro --ranks 4
//
//   # an ensemble sharing cmat (XGYRO layout; repeat --input per member,
//   # or point --ensemble at an input.xgyro manifest)
//   ./examples/xgyro_cli --ensemble examples/inputs/input.xgyro
//                        --ranks-per-sim 4 --intervals 2
//                        --timing-out out.xgyro.timing
//
//   # checkpointed run surviving an injected rank kill
//   ./examples/xgyro_cli --ensemble examples/inputs/input.xgyro
//                        --ranks-per-sim 2 --intervals 4
//                        --checkpoint-dir ckpt --faults "seed=1;kill=1@0.01"
//
// Run with --help for the full flag reference (docs/USER_GUIDE.md documents
// every flag, the fault-spec grammar, and the exit codes; the two are kept
// consistent by scripts/docs_check.sh).
//
// Exit status: 0 success (including recovered runs); 1 usage, input, or
// configuration error; 2 structured failure (RankFailure / DeadlockError)
// that was not recovered.
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/divergence.hpp"
#include "analysis/waitwork.hpp"
#include "campaign/campaign.hpp"
#include "gyro/restart.hpp"
#include "gyro/simulation.hpp"
#include "gyro/timing_log.hpp"
#include "simmpi/coll.hpp"
#include "simnet/machine.hpp"
#include "telemetry/colltable.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"
#include "xgyro/ensemble.hpp"

namespace {

struct Options {
  std::vector<std::string> inputs;
  std::string manifest;
  int ranks = 4;
  int ranks_per_sim = 4;
  int nodes = 0;  // 0 = derive from rank count
  xg::gyro::Mode mode = xg::gyro::Mode::kReal;
  int intervals = 1;
  std::string timing_out;
  std::string trace_out;
  std::string report_out;
  std::string metrics_out;
  bool grouped = false;
  std::string restart_write, restart_read;
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int max_recoveries = 3;
  bool resume = false;
  xg::mpi::FaultPlan faults;
  double watchdog_timeout_s = 60.0;
  bool check_invariants = true;
  bool analyze = false;
  bool perfmodel_check = false;
  double perfmodel_tol = xg::analysis::kDefaultDivergenceTolerance;
  std::string coll_select;  // "" = tuned
  std::string coll_table;
};

/// Strict numeric parsing: the whole value must be a number in range.
/// (std::stoi would accept "4x" and throw std::invalid_argument — an
/// uncaught exception class — on "abc".)
int parse_int(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX) {
    throw xg::InputError(xg::strprintf("%s: '%s' is not an integer",
                                       flag.c_str(), value.c_str()));
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    throw xg::InputError(xg::strprintf("%s: '%s' is not a number",
                                       flag.c_str(), value.c_str()));
  }
  return v;
}

void print_help() {
  std::printf(
      "usage: xgyro_cli (--input FILE [--input FILE ...] | --ensemble "
      "FILE) [options]\n\n"
      "  --input FILE        input file (repeat for an ensemble)\n"
      "  --ensemble FILE     input.xgyro-style manifest (N_SIM / DIR_i)\n"
      "  --ranks N           total ranks for a single simulation [4]\n"
      "  --ranks-per-sim N   ranks per ensemble member [4]\n"
      "  --nodes N           nodes of the Frontier-like machine [fit]\n"
      "  --mode real|model   real data or paper-scale model mode [real]\n"
      "  --intervals N       reporting intervals to run [1]\n"
      "  --timing-out FILE   write an out.xgyro.timing-style log\n"
      "  --trace-out FILE    write a Chrome trace-event JSON timeline\n"
      "                      (open with ui.perfetto.dev or "
      "chrome://tracing)\n"
      "  --report FILE       write a structured run report "
      "(xgyro.report JSON)\n"
      "  --metrics-out FILE  write a metrics snapshot "
      "(xgyro.metrics JSON)\n"
      "  --grouped           allow mixed physics: members grouped by\n"
      "                      cmat fingerprint, one shared tensor each\n"
      "  --restart-write DIR write decomposition-specific restart files\n"
      "                      after the run (real mode; legacy format)\n"
      "  --restart-read DIR  resume from restart files before the run\n"
      "  --checkpoint-dir DIR  elastic snapshots: write a validated,\n"
      "                      atomically-committed snapshot every\n"
      "                      --checkpoint-every intervals and recover\n"
      "                      from rank failures/deadlocks (real mode)\n"
      "  --checkpoint-every N  reporting intervals between snapshots [1]\n"
      "  --max-recoveries N  recoveries allowed before giving up [3]\n"
      "  --resume            restore from the newest valid snapshot in\n"
      "                      --checkpoint-dir before stepping\n"
      "  --faults SPEC       deterministic fault injection, e.g.\n"
      "                      "
      "\"seed=42;straggler=2x3.0;delay=0.3x5e-6;kill=1@0.02\"\n"
      "  --watchdog SECONDS  deadlock watchdog timeout (0 disables)\n"
      "  --no-invariants     disable the collective invariant monitor\n"
      "  --coll-select NAME  collective algorithm selector: 'tuned'\n"
      "                      (topology-aware decision table, the default) or\n"
      "                      'legacy' (fixed pre-selector algorithms)\n"
      "  --coll-table FILE   JSON collective decision table (xgyro_colltune\n"
      "                      output); rules override the tuned table\n"
      "  --analyze           trace the run and print its critical path and\n"
      "                      per-phase wait/work decomposition (embedded in\n"
      "                      --report / --metrics-out artifacts too)\n"
      "  --perfmodel-check   compare measured per-phase costs against the\n"
      "                      closed-form perfmodel prediction; a divergence\n"
      "                      beyond tolerance exits 1\n"
      "  --perfmodel-tol X   divergence gate ratio bound [3.0]\n"
      "  --help              print this reference and exit\n"
      "\n"
      "exit status:\n"
      "  0  success, including runs that recovered from faults\n"
      "  1  usage, input, or configuration error\n"
      "  2  structured failure (rank kill / deadlock) not recovered\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  std::set<std::string> seen;
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      throw xg::InputError(xg::strprintf("missing value after %s", argv[i]));
    }
    return std::string(argv[i + 1]);
  };
  // Every flag except --input (repeatable by design: one per ensemble
  // member) may appear at most once; a repeat is a conflict, not a silent
  // last-one-wins.
  auto once = [&](const std::string& flag) {
    if (!seen.insert(flag).second) {
      throw xg::InputError(
          xg::strprintf("duplicate %s (give each option at most once)",
                        flag.c_str()));
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--input") {
      o.inputs.push_back(need_value(i++));
    } else if (a == "--ensemble") {
      once(a);
      o.manifest = need_value(i++);
    } else if (a == "--ranks") {
      once(a);
      o.ranks = parse_int(a, need_value(i++));
    } else if (a == "--ranks-per-sim") {
      once(a);
      o.ranks_per_sim = parse_int(a, need_value(i++));
    } else if (a == "--nodes") {
      once(a);
      o.nodes = parse_int(a, need_value(i++));
    } else if (a == "--intervals") {
      once(a);
      o.intervals = parse_int(a, need_value(i++));
    } else if (a == "--timing-out") {
      once(a);
      o.timing_out = need_value(i++);
    } else if (a == "--trace-out") {
      once(a);
      o.trace_out = need_value(i++);
    } else if (a == "--report") {
      once(a);
      o.report_out = need_value(i++);
    } else if (a == "--metrics-out") {
      once(a);
      o.metrics_out = need_value(i++);
    } else if (a == "--grouped") {
      once(a);
      o.grouped = true;
    } else if (a == "--restart-write") {
      once(a);
      o.restart_write = need_value(i++);
    } else if (a == "--restart-read") {
      once(a);
      o.restart_read = need_value(i++);
    } else if (a == "--checkpoint-dir") {
      once(a);
      o.checkpoint_dir = need_value(i++);
    } else if (a == "--checkpoint-every") {
      once(a);
      o.checkpoint_every = parse_int(a, need_value(i++));
    } else if (a == "--max-recoveries") {
      once(a);
      o.max_recoveries = parse_int(a, need_value(i++));
    } else if (a == "--resume") {
      once(a);
      o.resume = true;
    } else if (a == "--faults") {
      once(a);
      o.faults = xg::mpi::FaultPlan::parse(need_value(i++));
    } else if (a == "--watchdog") {
      once(a);
      o.watchdog_timeout_s = parse_double(a, need_value(i++));
    } else if (a == "--no-invariants") {
      once(a);
      o.check_invariants = false;
    } else if (a == "--coll-select") {
      once(a);
      o.coll_select = need_value(i++);
    } else if (a == "--coll-table") {
      once(a);
      o.coll_table = need_value(i++);
    } else if (a == "--analyze") {
      once(a);
      o.analyze = true;
    } else if (a == "--perfmodel-check") {
      once(a);
      o.perfmodel_check = true;
    } else if (a == "--perfmodel-tol") {
      once(a);
      o.perfmodel_tol = parse_double(a, need_value(i++));
    } else if (a == "--mode") {
      once(a);
      const std::string m = need_value(i++);
      if (m == "real") {
        o.mode = xg::gyro::Mode::kReal;
      } else if (m == "model") {
        o.mode = xg::gyro::Mode::kModel;
      } else {
        throw xg::InputError("--mode must be 'real' or 'model'");
      }
    } else if (a == "--help" || a == "-h") {
      print_help();
      std::exit(0);
    } else {
      throw xg::InputError(xg::strprintf("unknown option '%s'", a.c_str()));
    }
  }

  if (o.inputs.empty() && o.manifest.empty()) {
    throw xg::InputError("need --input FILE (repeatable) or --ensemble FILE");
  }
  if (!o.inputs.empty() && !o.manifest.empty()) {
    throw xg::InputError("--input and --ensemble are mutually exclusive");
  }
  if (o.ranks < 1) throw xg::InputError("--ranks must be >= 1");
  if (o.ranks_per_sim < 1) throw xg::InputError("--ranks-per-sim must be >= 1");
  if (o.nodes < 0) throw xg::InputError("--nodes must be >= 0");
  if (o.intervals < 1) throw xg::InputError("--intervals must be >= 1");
  if (o.checkpoint_every < 1) {
    throw xg::InputError("--checkpoint-every must be >= 1");
  }
  if (o.max_recoveries < 0) {
    throw xg::InputError("--max-recoveries must be >= 0");
  }
  if (o.watchdog_timeout_s < 0.0) {
    throw xg::InputError("--watchdog must be >= 0");
  }
  if (!o.coll_select.empty() &&
      xg::mpi::CollSelector::named(o.coll_select) == nullptr) {
    throw xg::InputError("--coll-select must be 'tuned' or 'legacy'");
  }
  if (!o.coll_select.empty() && !o.coll_table.empty()) {
    throw xg::InputError(
        "--coll-select and --coll-table are mutually exclusive (a table is "
        "already a selector)");
  }
  if (seen.count("--perfmodel-tol") != 0 && !o.perfmodel_check) {
    throw xg::InputError("--perfmodel-tol requires --perfmodel-check");
  }
  if (o.perfmodel_tol < 1.0) {
    throw xg::InputError(
        "--perfmodel-tol must be >= 1 (it bounds the measured/predicted "
        "ratio on both sides)");
  }
  if (o.checkpoint_dir.empty()) {
    for (const char* f : {"--checkpoint-every", "--max-recoveries", "--resume"}) {
      if (seen.count(f) != 0) {
        throw xg::InputError(
            xg::strprintf("%s requires --checkpoint-dir", f));
      }
    }
  } else {
    if (o.mode != xg::gyro::Mode::kReal) {
      throw xg::InputError(
          "--checkpoint-dir requires --mode real (model mode carries no "
          "restorable state)");
    }
    if (!o.restart_read.empty() || !o.restart_write.empty()) {
      throw xg::InputError(
          "--checkpoint-dir and --restart-read/--restart-write are mutually "
          "exclusive (elastic snapshots supersede the legacy restart files)");
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  try {
    const Options opt = parse_args(argc, argv);
    xgyro::EnsembleInput manifest_ensemble;
    if (!opt.manifest.empty()) {
      manifest_ensemble =
          xgyro::EnsembleInput::load_manifest(opt.manifest, !opt.grouped);
    }
    const int n_members = !opt.manifest.empty()
                              ? manifest_ensemble.n_sims()
                              : static_cast<int>(opt.inputs.size());
    const bool ensemble_mode = n_members > 1;
    const int total_ranks =
        ensemble_mode ? opt.ranks_per_sim * n_members : opt.ranks;
    const int nodes = opt.nodes > 0 ? opt.nodes : (total_ranks + 7) / 8;
    const auto machine = net::frontier_like(nodes);
    XG_REQUIRE(machine.total_ranks() >= total_ranks,
               "not enough nodes for the requested rank count");

    // Resolve the run's collective selector: a JSON table beats a named
    // built-in; both default to the tuned table. The built-ins are statics,
    // wrapped in a non-owning shared_ptr via the aliasing constructor.
    std::shared_ptr<const mpi::CollSelector> selector;
    if (!opt.coll_table.empty()) {
      selector = telemetry::load_coll_table(opt.coll_table);
    } else if (!opt.coll_select.empty()) {
      selector = std::shared_ptr<const mpi::CollSelector>(
          std::shared_ptr<void>(), mpi::CollSelector::named(opt.coll_select));
    }

    mpi::RuntimeOptions ropts;
    ropts.faults = opt.faults;
    ropts.check_invariants = opt.check_invariants;
    ropts.watchdog_timeout_s = opt.watchdog_timeout_s;
    ropts.coll_selector = selector;
    // Telemetry artifacts need the trace stream; the report and metrics also
    // aggregate the traffic matrix. Both stay off unless requested. The
    // analysis engine works entirely from the trace, so --analyze implies it.
    ropts.enable_trace = !opt.trace_out.empty() || !opt.report_out.empty() ||
                         !opt.metrics_out.empty() || opt.analyze;
    ropts.enable_traffic = !opt.report_out.empty() || !opt.metrics_out.empty();
    if (opt.faults.active()) {
      std::printf("%s\n", opt.faults.describe().c_str());
    }

    mpi::RunResult result;
    struct MemberReport {
      std::string tag;
      gyro::Diagnostics diag;
    };
    std::vector<MemberReport> reports;
    std::mutex mu;

    const bool elastic = !opt.checkpoint_dir.empty();
    std::vector<campaign::RecoveryEvent> recoveries;
    std::uint64_t snapshots_committed = 0, snapshots_rejected = 0;
    net::MachineSpec final_machine = machine;

    if (elastic) {
      // Elastic path: single simulations and ensembles both run through the
      // campaign executor, which snapshots periodically and replans/resumes
      // on RankFailure or DeadlockError.
      xgyro::EnsembleInput batch;
      if (!opt.manifest.empty()) {
        batch = manifest_ensemble;
      } else if (ensemble_mode) {
        batch = xgyro::EnsembleInput::load(opt.inputs, !opt.grouped);
      } else {
        batch.members.push_back(gyro::Input::load(opt.inputs.front()));
      }
      std::printf("%s: %d member(s) x %d ranks on %d node(s), %s mode "
                  "(elastic checkpoints in %s)\n",
                  ensemble_mode ? "XGYRO" : "CGYRO", batch.n_sims(),
                  ensemble_mode ? opt.ranks_per_sim : opt.ranks, nodes,
                  opt.mode == gyro::Mode::kReal ? "real" : "model",
                  opt.checkpoint_dir.c_str());

      campaign::RecoveryOptions ropts_elastic;
      ropts_elastic.checkpoint_dir = opt.checkpoint_dir;
      ropts_elastic.checkpoint_every = opt.checkpoint_every;
      ropts_elastic.max_recoveries = opt.max_recoveries;
      ropts_elastic.resume = opt.resume;
      ropts_elastic.faults = opt.faults;
      ropts_elastic.check_invariants = opt.check_invariants;
      ropts_elastic.watchdog_timeout_s = opt.watchdog_timeout_s;
      ropts_elastic.enable_trace = ropts.enable_trace;
      ropts_elastic.enable_traffic = ropts.enable_traffic;
      ropts_elastic.coll_selector = selector;
      ropts_elastic.sharing = opt.grouped
                                  ? xgyro::SharingPolicy::kGroupByFingerprint
                                  : xgyro::SharingPolicy::kSingleGroup;
      ropts_elastic.cgyro_layout = !ensemble_mode;

      const auto r = campaign::run_job_elastic(
          batch, machine, ensemble_mode ? opt.ranks_per_sim : opt.ranks,
          opt.intervals, opt.mode, ropts_elastic);
      result = r.run;
      final_machine = r.machine;
      recoveries = r.recoveries;
      snapshots_committed = r.snapshots_committed;
      snapshots_rejected = r.snapshots_rejected;
      for (int m = 0; m < batch.n_sims(); ++m) {
        reports.push_back({batch.members[m].tag, r.diagnostics[m]});
      }
    } else if (ensemble_mode) {
      const auto ensemble =
          !opt.manifest.empty()
              ? manifest_ensemble
              : xgyro::EnsembleInput::load(opt.inputs, !opt.grouped);
      std::printf("XGYRO: %d members x %d ranks on %d node(s), %s mode\n",
                  ensemble.n_sims(), opt.ranks_per_sim, nodes,
                  opt.mode == gyro::Mode::kReal ? "real" : "model");
      const auto decomp = gyro::Decomposition::choose(
          ensemble.members.front(), opt.ranks_per_sim, ensemble.n_sims());
      reports.resize(static_cast<size_t>(ensemble.n_sims()));
      result = mpi::run_simulation(machine, total_ranks, [&](mpi::Proc& p) {
        xgyro::EnsembleDriver driver(
            ensemble, decomp, p, opt.mode,
            opt.grouped ? xgyro::SharingPolicy::kGroupByFingerprint
                        : xgyro::SharingPolicy::kSingleGroup);
        driver.initialize();
        if (!opt.restart_read.empty()) {
          gyro::read_restart(opt.restart_read, driver.simulation());
        }
        gyro::Diagnostics d;
        for (int i = 0; i < opt.intervals; ++i) {
          d = driver.advance_report_interval();
        }
        if (!opt.restart_write.empty()) {
          gyro::write_restart(opt.restart_write, driver.simulation());
        }
        if (p.world_rank() % decomp.nranks() == 0) {
          const std::scoped_lock lock(mu);
          reports[driver.sim_index()] = {
              ensemble.members[driver.sim_index()].tag, d};
        }
      }, ropts);
    } else {
      const auto input = !opt.manifest.empty()
                             ? manifest_ensemble.members.front()
                             : gyro::Input::load(opt.inputs.front());
      std::printf("CGYRO: '%s' on %d ranks / %d node(s), %s mode\n",
                  input.tag.c_str(), total_ranks, nodes,
                  opt.mode == gyro::Mode::kReal ? "real" : "model");
      const auto decomp = gyro::Decomposition::choose(input, total_ranks);
      reports.resize(1);
      result = mpi::run_simulation(machine, total_ranks, [&](mpi::Proc& p) {
        auto layout = gyro::make_cgyro_layout(p.world(), decomp);
        gyro::Simulation sim(input, decomp, std::move(layout), p, opt.mode);
        sim.initialize();
        if (!opt.restart_read.empty()) gyro::read_restart(opt.restart_read, sim);
        gyro::Diagnostics d;
        for (int i = 0; i < opt.intervals; ++i) {
          d = sim.advance_report_interval();
        }
        if (!opt.restart_write.empty()) gyro::write_restart(opt.restart_write, sim);
        if (p.world_rank() == 0) {
          const std::scoped_lock lock(mu);
          reports[0] = {input.tag, d};
        }
      }, ropts);
    }

    std::printf("\n%-16s %8s %10s %14s %14s\n", "member", "steps", "time",
                "phi_rms", "flux_proxy");
    for (const auto& r : reports) {
      std::printf("%-16s %8d %10.3f %14.6e %14.6e\n", r.tag.c_str(),
                  r.diag.steps, r.diag.time, r.diag.phi_rms,
                  r.diag.flux_proxy);
    }
    std::printf("\n%s", gyro::format_timing(result, xgyro::solver_phases()).c_str());

    if (elastic) {
      std::printf(
          "checkpointing: %llu snapshot(s) committed, %llu corrupt snapshot(s) "
          "skipped, %zu recovery event(s)\n",
          static_cast<unsigned long long>(snapshots_committed),
          static_cast<unsigned long long>(snapshots_rejected),
          recoveries.size());
      for (size_t i = 0; i < recoveries.size(); ++i) {
        const auto& ev = recoveries[i];
        std::printf(
            "  recovery %zu: %s (rank %d at t=%.3e s, phase %s) -> resumed "
            "at interval %lld on %d node(s), %d ranks/sim\n",
            i + 1, ev.kind.c_str(), ev.world_rank, ev.virtual_time_s,
            ev.phase.c_str(), static_cast<long long>(ev.resumed_interval),
            ev.nodes_after, ev.ranks_per_sim_after);
      }
    }

    if (!result.fault_stats.empty()) {
      std::uint64_t delayed = 0;
      double delay_s = 0.0, straggle_s = 0.0;
      for (const auto& f : result.fault_stats) {
        delayed += f.delayed_msgs;
        delay_s += f.delay_added_s;
        straggle_s += f.straggler_added_s;
      }
      std::printf(
          "fault injection: %llu message(s) delayed (+%.3e s), straggler "
          "overhead +%.3e s; %llu collective(s) invariant-checked\n",
          static_cast<unsigned long long>(delayed), delay_s, straggle_s,
          static_cast<unsigned long long>(result.collectives_checked));
    }

    analysis::CriticalPath cpath;
    analysis::WaitWorkSummary waitwork;
    if (opt.analyze) {
      cpath = analysis::compute_critical_path(result);
      waitwork = analysis::analyze_waitwork(result);
      std::printf("\n%s", analysis::format_critical_path(cpath).c_str());
      std::printf("\n%s", analysis::format_waitwork(waitwork).c_str());
    }

    telemetry::Json divergence_doc;  // null unless --perfmodel-check ran
    bool divergence_failed = false;
    if (opt.perfmodel_check) {
      // Replay the closed-form prediction for the *initial* configuration;
      // an elastic run that replanned onto a different layout is expected
      // to diverge from it.
      const gyro::Input analysis_input =
          !opt.manifest.empty() ? manifest_ensemble.members.front()
                                : gyro::Input::load(opt.inputs.front());
      const int k = ensemble_mode ? n_members : 1;
      const int ranks_per_sim = ensemble_mode ? opt.ranks_per_sim : opt.ranks;
      const auto analysis_decomp =
          ensemble_mode
              ? gyro::Decomposition::choose(analysis_input, ranks_per_sim, k)
              : gyro::Decomposition::choose(analysis_input, ranks_per_sim);
      const analysis::DivergenceReport div = analysis::check_divergence(
          result, analysis_input, analysis_decomp, k, machine, opt.intervals,
          opt.perfmodel_tol, analysis::kDefaultSignificanceFrac,
          selector.get());
      std::printf("\n%s", analysis::format_divergence(div).c_str());
      divergence_doc = analysis::divergence_json(div);
      divergence_failed = !div.pass;
    }

    if (!opt.timing_out.empty()) {
      gyro::write_timing_log(
          opt.timing_out,
          gyro::timing_rows(result, xgyro::solver_phases()), result.makespan_s);
      std::printf("timing log written to %s\n", opt.timing_out.c_str());
    }
    if (!opt.trace_out.empty()) {
      telemetry::write_chrome_trace(opt.trace_out, result);
      std::printf("chrome trace written to %s (open with ui.perfetto.dev)\n",
                  opt.trace_out.c_str());
    }
    if (!opt.report_out.empty() || !opt.metrics_out.empty()) {
      const net::Placement placement(final_machine);
      telemetry::MetricsRegistry registry =
          telemetry::collect_run_metrics(result, placement);
      if (opt.analyze) analysis::record_waitwork_metrics(waitwork, registry);
      if (!opt.report_out.empty()) {
        telemetry::RunReport report = telemetry::build_run_report(
            result, placement, xgyro::solver_phases(),
            ensemble_mode ? "xgyro" : "cgyro", n_members,
            /*with_metrics=*/false);
        report.metrics = registry.snapshot();
        if (opt.analyze || opt.perfmodel_check) {
          telemetry::Json analysis_doc = telemetry::Json::object();
          if (opt.analyze) {
            analysis_doc.set("critical_path",
                             analysis::critical_path_json(cpath));
            analysis_doc.set("waitwork", analysis::waitwork_json(waitwork));
          }
          if (opt.perfmodel_check) {
            analysis_doc.set("divergence", divergence_doc);
          }
          report.analysis = std::move(analysis_doc);
        }
        if (elastic) {
          report.have_recovery = true;
          report.snapshots_committed = snapshots_committed;
          report.snapshots_rejected = snapshots_rejected;
          for (const auto& ev : recoveries) {
            telemetry::RunReport::RecoveryRecord rec;
            rec.kind = ev.kind;
            rec.world_rank = ev.world_rank;
            rec.virtual_time_s = ev.virtual_time_s;
            rec.phase = ev.phase;
            rec.resumed_interval = ev.resumed_interval;
            rec.nodes_before = ev.nodes_before;
            rec.nodes_after = ev.nodes_after;
            rec.ranks_per_sim_before = ev.ranks_per_sim_before;
            rec.ranks_per_sim_after = ev.ranks_per_sim_after;
            report.recoveries.push_back(std::move(rec));
          }
        }
        telemetry::write_run_report(opt.report_out, report);
        std::printf("run report written to %s\n", opt.report_out.c_str());
      }
      if (!opt.metrics_out.empty()) {
        telemetry::write_json_file(opt.metrics_out, registry.snapshot());
        std::printf("metrics written to %s\n", opt.metrics_out.c_str());
      }
    }
    if (divergence_failed) {
      // Artifacts above are still written (the report records the failed
      // gate); the exit status is what CI keys on.
      throw Error(strprintf(
          "perf-model divergence gate failed (tolerance %.2fx); see table "
          "above",
          opt.perfmodel_tol));
    }
    return 0;
  } catch (const campaign::JobAborted& e) {
    std::fprintf(stderr, "xgyro_cli: elastic job aborted (%s)\n",
                 e.kind().c_str());
    std::fprintf(stderr, "  reason : %s\n", e.reason().c_str());
    std::fprintf(stderr, "  rank   : %d\n", e.world_rank());
    std::fprintf(stderr, "  vtime  : %.9e s\n", e.virtual_time_s());
    std::fprintf(stderr, "  detail : %s\n", e.what());
    return 2;
  } catch (const mpi::RankFailure& e) {
    std::fprintf(stderr, "xgyro_cli: structured rank failure\n");
    std::fprintf(stderr, "  rank   : %d\n", e.world_rank());
    std::fprintf(stderr, "  vtime  : %.9e s\n", e.virtual_time_s());
    std::fprintf(stderr, "  phase  : %s\n", e.phase().c_str());
    std::fprintf(stderr, "  detail : %s\n", e.what());
    return 2;
  } catch (const mpi::DeadlockError& e) {
    std::fprintf(stderr, "xgyro_cli: deadlock report (%zu blocked rank(s))\n",
                 e.blocked().size());
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_cli: %s\n", e.what());
    return 1;
  }
}
