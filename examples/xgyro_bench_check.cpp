// xgyro_bench_check — record and enforce benchmark baselines.
//
//   # gate a fresh bench run against a recorded baseline:
//   ./examples/xgyro_bench_check BENCH_node_scaling.json candidate.json
//
//   # record a baseline from a bench's --json payload:
//   ./examples/xgyro_bench_check --record node_scaling
//        --payload candidate.json --out BENCH_node_scaling.json
//        [--tol 0.02] [--tol-for series.0.efficiency=0.05]
//        [--ignore cells_per_s]
//
//   # prove a baseline detects a 10% regression (identity must pass,
//   # a +10% perturbation of every metric must fail):
//   ./examples/xgyro_bench_check --self-test BENCH_node_scaling.json
//
//   # validate + self-test every BENCH_*.json in a directory (the ci gate):
//   ./examples/xgyro_bench_check --smoke .
//
// Exit status: 0 pass, 1 comparison failure / invalid baseline / usage
// error.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

/// Strict numeric parse (std::stod would throw std::invalid_argument — an
/// exception class the Error handler below does not catch).
double parse_frac(const char* flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      !(v >= 0.0)) {
    throw xg::InputError(xg::strprintf(
        "%s: '%s' is not a non-negative number", flag, value.c_str()));
  }
  return v;
}

void usage(std::FILE* out = stderr) {
  std::fprintf(
      out,
      "usage: xgyro_bench_check BASELINE_JSON CANDIDATE_JSON\n"
      "       xgyro_bench_check --record NAME --payload FILE --out FILE\n"
      "                         [--tol FRAC] [--tol-for PATH=FRAC ...]\n"
      "                         [--ignore SUBSTRING ...]\n"
      "       xgyro_bench_check --self-test BASELINE_JSON\n"
      "       xgyro_bench_check --smoke DIR\n"
      "       xgyro_bench_check --help\n");
}

int run_self_test(const std::string& path) {
  using namespace xg;
  const auto st =
      analysis::self_test_baseline(telemetry::load_json_file(path));
  std::printf("%s: identity %s, +10%% perturbation %s, %d gated metric(s)\n",
              path.c_str(), st.identity_pass ? "passes" : "FAILS",
              st.perturbed_fails ? "detected" : "NOT DETECTED",
              st.gated_metrics);
  if (!st.ok()) {
    throw Error(strprintf(
        "baseline '%s' failed its self-test (a 10%% regression would %s)",
        path.c_str(), st.perturbed_fails ? "be detected" : "ship silently"));
  }
  return 0;
}

int run_smoke(const std::string& dir) {
  using namespace xg;
  std::vector<std::string> baselines;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      baselines.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw Error(strprintf("--smoke: cannot read directory '%s': %s",
                          dir.c_str(), ec.message().c_str()));
  }
  if (baselines.empty()) {
    throw Error(strprintf("--smoke: no BENCH_*.json baselines in '%s'",
                          dir.c_str()));
  }
  std::sort(baselines.begin(), baselines.end());
  for (const auto& path : baselines) run_self_test(path);
  std::printf("smoke: %zu baseline(s) validated\n", baselines.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      usage(args.empty() ? stderr : stdout);
      return args.empty() ? 1 : 0;
    }

    if (args[0] == "--self-test") {
      if (args.size() != 2) { usage(); return 1; }
      return run_self_test(args[1]);
    }
    if (args[0] == "--smoke") {
      if (args.size() != 2) { usage(); return 1; }
      return run_smoke(args[1]);
    }

    if (args[0] == "--record") {
      std::string name, payload_path, out_path;
      double default_tol = analysis::kDefaultBaselineTolerance;
      std::vector<std::pair<std::string, double>> tol_overrides;
      std::vector<std::string> ignore;
      if (args.size() < 2) { usage(); return 1; }
      name = args[1];
      for (std::size_t i = 2; i < args.size(); ++i) {
        auto need_value = [&](const char* flag) {
          if (i + 1 >= args.size()) {
            throw InputError(strprintf("missing value after %s", flag));
          }
          return args[++i];
        };
        if (args[i] == "--payload") {
          payload_path = need_value("--payload");
        } else if (args[i] == "--out") {
          out_path = need_value("--out");
        } else if (args[i] == "--tol") {
          default_tol = parse_frac("--tol", need_value("--tol"));
        } else if (args[i] == "--tol-for") {
          const std::string spec = need_value("--tol-for");
          const auto eq = spec.rfind('=');
          if (eq == std::string::npos || eq == 0) {
            throw InputError("--tol-for expects PATH=FRAC");
          }
          tol_overrides.emplace_back(
              spec.substr(0, eq),
              parse_frac("--tol-for", spec.substr(eq + 1)));
        } else if (args[i] == "--ignore") {
          ignore.push_back(need_value("--ignore"));
        } else {
          throw InputError(
              strprintf("unknown --record option '%s'", args[i].c_str()));
        }
      }
      if (payload_path.empty() || out_path.empty()) {
        throw InputError("--record needs --payload FILE and --out FILE");
      }
      const telemetry::Json baseline = analysis::make_baseline(
          name, telemetry::load_json_file(payload_path), default_tol,
          tol_overrides, ignore);
      // Refuse to record a baseline that could not catch a regression.
      const auto st = analysis::self_test_baseline(baseline);
      if (!st.ok()) {
        throw Error(strprintf(
            "refusing to record '%s': baseline fails its own self-test "
            "(identity %s, perturbation %s, %d gated metric(s))",
            name.c_str(), st.identity_pass ? "ok" : "fails",
            st.perturbed_fails ? "detected" : "undetected",
            st.gated_metrics));
      }
      telemetry::write_json_file(out_path, baseline);
      std::printf("baseline '%s' recorded to %s\n", name.c_str(),
                  out_path.c_str());
      return 0;
    }

    if (args.size() != 2) { usage(); return 1; }
    const auto check =
        analysis::check_baseline(telemetry::load_json_file(args[0]),
                                 telemetry::load_json_file(args[1]));
    std::printf("%s", analysis::format_baseline_check(check).c_str());
    if (!check.pass) {
      throw Error(strprintf("bench '%s' regressed against baseline %s",
                            check.bench.c_str(), args[0].c_str()));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_bench_check: %s\n", e.what());
    return 1;
  }
}
