// xgyro_servemon — offline analyzer for xgyro.events service logs:
//
//   ./examples/xgyro_servemon --events serve.events.jsonl --summary
//
// The log is validated first (contiguous seq, monotone virtual time, a
// legal per-request state machine with exactly-once terminals), then
// replayed through the same ServiceMonitor the live service runs, so the
// fairness/starvation/SLO/calibration numbers it prints are bit-identical
// to what the service computed online. When the log carries a service.end
// record, the replayed sketch percentiles are cross-checked against the
// exact end-of-run per-tenant percentiles recorded there.
//
// Exit status:
//   0  log valid; every enabled check passed
//   1  usage error, unreadable log, or validation failure
//   2  an analysis gate tripped: sketch percentiles off the recorded
//      exact ones, calibration gate failed, (with --slo) alerts fired,
//      or (with --audit) the fast-path divergence gate failed
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "campaign/monitor.hpp"
#include "telemetry/events.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

struct Options {
  std::string events;
  bool validate = false;
  bool summary = false;
  bool audit = false;
  std::string slo;
  std::string tenant;
  double window_s = 0.0;
  std::string trace_out;
  std::string json_out;
};

double parse_double(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    throw xg::InputError(xg::strprintf("%s: '%s' is not a number",
                                       flag.c_str(), value.c_str()));
  }
  return v;
}

void print_help() {
  std::printf(
      "usage: xgyro_servemon --events FILE [options]\n\n"
      "  --events FILE     xgyro.events JSONL log to analyze\n"
      "  --validate        validate only (state machine, exactly-once\n"
      "                    terminals) and print the record census\n"
      "  --summary         replay the log through the service monitors and\n"
      "                    print the fairness/SLO report [default]\n"
      "  --slo SPEC        evaluate an SLO during replay, e.g.\n"
      "                    \"wait=100;target=0.9;window=500;burn=2\";\n"
      "                    alerts firing make the exit status 2\n"
      "  --audit           re-derive the fast-path audit verdict from the\n"
      "                    replayed job.audited records; a failing gate (or\n"
      "                    a log with no audits) makes the exit status 2\n"
      "  --tenant NAME     restrict the per-tenant table to one tenant\n"
      "  --window S        rolling monitor window in virtual seconds\n"
      "                    [0 = whole run]\n"
      "  --trace-out FILE  write the Chrome/Perfetto trace view of the log\n"
      "  --json FILE       write the replayed monitor report as JSON\n"
      "  --help            print this reference and exit\n"
      "\n"
      "exit status:\n"
      "  0  log valid; every enabled check passed\n"
      "  1  usage error, unreadable log, or validation failure\n"
      "  2  sketch/exact mismatch, calibration gate, SLO alerts, or a\n"
      "     failing fast-path audit gate\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  std::set<std::string> seen;
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      throw xg::InputError(xg::strprintf("missing value after %s", argv[i]));
    }
    return std::string(argv[i + 1]);
  };
  auto once = [&](const std::string& flag) {
    if (!seen.insert(flag).second) {
      throw xg::InputError(
          xg::strprintf("duplicate %s (give each option at most once)",
                        flag.c_str()));
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--events") {
      once(a);
      o.events = need_value(i++);
    } else if (a == "--validate") {
      once(a);
      o.validate = true;
    } else if (a == "--summary") {
      once(a);
      o.summary = true;
    } else if (a == "--slo") {
      once(a);
      o.slo = need_value(i++);
    } else if (a == "--audit") {
      once(a);
      o.audit = true;
    } else if (a == "--tenant") {
      once(a);
      o.tenant = need_value(i++);
    } else if (a == "--window") {
      once(a);
      o.window_s = parse_double(a, need_value(i++));
    } else if (a == "--trace-out") {
      once(a);
      o.trace_out = need_value(i++);
    } else if (a == "--json") {
      once(a);
      o.json_out = need_value(i++);
    } else if (a == "--help" || a == "-h") {
      print_help();
      std::exit(0);
    } else {
      throw xg::InputError(
          xg::strprintf("unknown option '%s' (see --help)", a.c_str()));
    }
  }
  if (o.events.empty()) {
    throw xg::InputError("--events FILE is required (see --help)");
  }
  if (o.window_s < 0.0) throw xg::InputError("--window must be >= 0");
  if (!o.slo.empty()) {
    (void)xg::campaign::SloSpec::parse(o.slo);  // fail fast on bad grammar
  }
  if (!o.validate && !o.summary) o.summary = true;
  return o;
}

/// Sketch-vs-exact agreement: the sketch is exact for small tenants and
/// rank-bounded otherwise, so a generous envelope of 15% of the exact
/// distribution's max (plus an absolute epsilon) separates "sketch noise"
/// from "replay produced different numbers".
bool quantile_close(double sketch, double exact, double exact_max) {
  return std::abs(sketch - exact) <= 0.15 * std::max(exact_max, 0.0) + 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  using telemetry::Json;
  try {
    const Options opt = parse_args(argc, argv);

    const std::vector<Json> records = telemetry::load_event_log(opt.events);
    const telemetry::EventLogStats stats = telemetry::validate_events(records);
    std::printf(
        "%s: %d record(s), %d request(s), %d terminal(s) "
        "(%d completed, %d failed, %d rejected)%s\n",
        opt.events.c_str(), stats.records, stats.requests, stats.terminals,
        stats.completed, stats.failed, stats.rejected,
        stats.aborted ? " [ABORTED RUN]" : "");
    if (opt.validate) {
      for (const auto& [type, n] : stats.by_type) {
        std::printf("  %-20s %d\n", type.c_str(), n);
      }
      std::printf("validation: OK\n");
    }

    int exit_code = 0;
    if (opt.summary || opt.audit || !opt.json_out.empty()) {
      campaign::SloSpec slo;
      if (!opt.slo.empty()) slo = campaign::SloSpec::parse(opt.slo);
      campaign::ServiceMonitor monitor(opt.window_s, slo);
      for (const auto& rec : records) (void)monitor.consume(rec);
      const Json report = monitor.report();

      // The exact per-tenant percentiles the live service recorded, if the
      // run finished cleanly.
      const Json* exact_by_tenant = nullptr;
      if (!records.empty() && stats.ended) {
        exact_by_tenant = records.back().find("queue_wait_by_tenant");
      }

      if (opt.summary) {
        std::printf("fairness (Jain): %.4f over %zu tenant(s)\n",
                    monitor.jain_fairness(), report.at("tenants").size());
        const Json& starve = report.at("starvation");
        std::printf("starvation: peak queued age %.6f s (%.2fx the cohort "
                    "median wait)\n",
                    starve.at("peak_age_s").as_double(),
                    starve.at("peak_ratio").as_double());
        for (const auto& [tenant, tj] : report.at("tenants").items()) {
          if (!opt.tenant.empty() && tenant != opt.tenant) continue;
          std::printf(
              "tenant %s: %lld placed, wait p50 %.6f p95 %.6f p99 %.6f "
              "(sketch, %d centroid(s))\n",
              tenant.c_str(), static_cast<long long>(tj.at("n").as_int()),
              tj.at("p50").as_double(), tj.at("p95").as_double(),
              tj.at("p99").as_double(),
              static_cast<int>(tj.at("sketch_centroids").as_int()));
          if (exact_by_tenant != nullptr) {
            const Json* ex = exact_by_tenant->find(tenant);
            if (ex != nullptr) {
              const double exact_max = ex->at("max").as_double();
              const bool ok =
                  quantile_close(tj.at("p50").as_double(),
                                 ex->at("p50").as_double(), exact_max) &&
                  quantile_close(tj.at("p95").as_double(),
                                 ex->at("p95").as_double(), exact_max) &&
                  quantile_close(tj.at("p99").as_double(),
                                 ex->at("p99").as_double(), exact_max);
              std::printf("  exact:  wait p50 %.6f p95 %.6f p99 %.6f -> %s\n",
                          ex->at("p50").as_double(),
                          ex->at("p95").as_double(),
                          ex->at("p99").as_double(),
                          ok ? "sketch agrees" : "SKETCH MISMATCH");
              if (!ok) exit_code = 2;
            }
          }
        }
        const Json& cal = report.at("calibration");
        std::printf(
            "wait prediction: n=%lld mae %.6f s (ratio %.3f, coverage "
            "%.2f) -> %s\n",
            static_cast<long long>(cal.at("n").as_int()),
            cal.at("mae_s").as_double(), cal.at("ratio").as_double(),
            cal.at("coverage").as_double(),
            cal.at("pass").as_bool() ? "calibrated" : "CALIBRATION GATE");
        if (!cal.at("pass").as_bool()) exit_code = 2;
        if (const Json* sj = report.find("slo"); sj != nullptr) {
          std::printf(
              "slo: wait<=%.6g s target %.2f -> compliance %.4f, burn %.2f, "
              "%d alert(s)%s\n",
              sj->at("wait_s").as_double(), sj->at("target").as_double(),
              sj->at("compliance").as_double(),
              sj->at("burn_rate").as_double(), monitor.alerts(),
              monitor.alerts() > 0 ? " [SLO BURN]" : "");
          if (monitor.alerts() > 0) exit_code = 2;
        }
      }

      if (opt.audit) {
        const Json* fp = report.find("fast_path");
        if (fp == nullptr) {
          std::printf(
              "fast path: no job.modeled/job.audited records in this log "
              "[AUDIT GATE]\n");
          exit_code = 2;
        } else {
          const Json& audit = fp->at("audit");
          const bool pass = audit.at("pass").as_bool();
          std::printf(
              "fast path: %lld modeled, %lld audited (%lld forced)\n"
              "audit gate: n=%lld, mean price %.6f s vs measured %.6f s, "
              "worst ratio %.3f (tolerance %.1f) -> %s\n",
              static_cast<long long>(fp->at("modeled").as_int()),
              static_cast<long long>(fp->at("audited").as_int()),
              static_cast<long long>(fp->at("forced").as_int()),
              static_cast<long long>(audit.at("n").as_int()),
              audit.at("mean_price_s").as_double(),
              audit.at("mean_measured_s").as_double(),
              audit.at("worst_ratio").as_double(),
              audit.at("tolerance").as_double(),
              pass ? "PASS" : "AUDIT GATE");
          if (!pass) exit_code = 2;
        }
      }

      if (!opt.json_out.empty()) {
        Json doc = Json::object();
        doc.set("schema", "xgyro.servemon").set("schema_version", 1);
        Json census = Json::object();
        for (const auto& [type, n] : stats.by_type) census.set(type, n);
        doc.set("records", stats.records)
            .set("requests", stats.requests)
            .set("aborted", stats.aborted)
            .set("census", std::move(census))
            .set("report", report);
        telemetry::write_json_file(opt.json_out, doc);
        std::printf("monitor report written to %s\n", opt.json_out.c_str());
      }
    }

    if (!opt.trace_out.empty()) {
      telemetry::write_json_file(opt.trace_out,
                                 telemetry::service_chrome_trace(records));
      std::printf("trace written to %s (open in Perfetto / chrome://tracing)"
                  "\n",
                  opt.trace_out.c_str());
    }
    return exit_code;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_servemon: %s\n", e.what());
    return 1;
  }
}
