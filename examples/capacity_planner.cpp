// Capacity planner: answer the deployment question the paper poses —
// given a campaign of simulations and a node budget, is it cheaper to run
// them sequentially with CGYRO or together as an XGYRO ensemble?
//
//   $ ./examples/capacity_planner [n_sims] [nodes]
//
// Uses the closed-form performance model (instant; the fig2_breakdown bench
// runs the discrete-event simulation for the same question).
#include <cstdio>
#include <cstdlib>

#include "perfmodel/perfmodel.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  const int n_sims = argc > 1 ? std::atoi(argv[1]) : 8;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 32;

  const auto input = gyro::Input::nl03c_like();
  const auto machine = perfmodel::nl03c_machine(nodes);

  std::printf("campaign: %d nl03c-like simulations, %d %s nodes (%d ranks)\n\n",
              n_sims, nodes, machine.name.c_str(), machine.total_ranks());

  // Baseline: each simulation alone on the full allocation, sequentially.
  double cgyro_campaign = -1.0;
  try {
    const auto cg = perfmodel::plan_cgyro(input, machine);
    std::printf("%s\n", cg.describe().c_str());
    if (cg.fit.fits) {
      cgyro_campaign = n_sims * cg.per_report.total();
      std::printf("  -> CGYRO campaign: %d sequential jobs, %.3f s per "
                  "reporting step total\n\n",
                  n_sims, cgyro_campaign);
    } else {
      std::printf("  -> does not fit; a single CGYRO simulation needs >= %d "
                  "nodes\n\n",
                  perfmodel::min_feasible_nodes_cgyro(input, 1024));
    }
  } catch (const Error& e) {
    std::printf("CGYRO: %s\n\n", e.what());
  }

  // XGYRO ensembles of every size dividing the campaign.
  std::printf("XGYRO options (k members at once, %d/k sequential jobs):\n",
              n_sims);
  double best = cgyro_campaign;
  int best_k = 1;
  for (int k = 2; k <= n_sims; k *= 2) {
    if (n_sims % k != 0 || machine.total_ranks() % k != 0) continue;
    try {
      const auto xg = perfmodel::plan_xgyro(input, k, machine);
      const double campaign = (n_sims / k) * xg.per_report.total();
      std::printf("%s\n  -> campaign %.3f s per reporting step%s\n",
                  xg.describe().c_str(), campaign,
                  xg.fit.fits ? "" : "  [INFEASIBLE]");
      if (xg.fit.fits && (best < 0 || campaign < best)) {
        best = campaign;
        best_k = k;
      }
    } catch (const Error& e) {
      std::printf("k=%d: %s\n", k, e.what());
    }
  }

  if (best > 0 && cgyro_campaign > 0) {
    std::printf("\nrecommendation: k=%d (%.2fx vs sequential CGYRO; the paper "
                "measured 1.5x for k=8 on 32 nodes)\n",
                best_k, cgyro_campaign / best);
  } else if (best > 0) {
    std::printf("\nrecommendation: k=%d — XGYRO makes the campaign feasible "
                "where plain CGYRO cannot even run one member per job\n",
                best_k);
  }
  return 0;
}
