// xgyro_serve — the online campaign service, driven from a synthetic
// arrival stream:
//
//   ./examples/xgyro_serve --gen "seed=7;n=12;rate=2;sigs=3;tenants=2"
//       --nodes 2 --ranks-per-node 4 --window 1.0
//
// Requests are admitted (or shed), batched by cmat fingerprint inside the
// batching window, bin-packed onto the simulated cluster, and executed
// through the deterministic DES. The summary prints throughput
// (jobs/requests per virtual hour) and exact queue-wait percentiles;
// --report writes the full xgyro.service JSON document.
//
// Exit status:
//   0  every admitted request completed (rejections are not errors)
//   1  usage, input, or configuration error
//   2  at least one admitted request failed (recovery budget exhausted)
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include <memory>

#include "campaign/monitor.hpp"
#include "campaign/service.hpp"
#include "simnet/machine.hpp"
#include "telemetry/events.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

struct Options {
  std::string gen;
  int nodes = 2;
  int ranks_per_node = 4;
  double window_s = 1.0;
  int max_batch = 8;
  bool batching = true;
  int queue_depth = 64;
  int tenant_quota = 16;
  int intervals = 1;
  std::string mode = "real";
  int nodes_per_job = 0;
  std::string checkpoint_dir;
  int quantum = 1;
  int max_recoveries = 3;
  std::string report_out;
  std::string metrics_out;
  std::string report_dir;
  std::string events_out;
  double metrics_every = 0.0;
  std::string slo;
  bool fast_path = false;
  double audit_frac = 0.05;
  bool audit_frac_set = false;
  long audit_seed = 1;
  bool backfill = false;
  bool window_auto = false;
};

int parse_int(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX) {
    throw xg::InputError(xg::strprintf("%s: '%s' is not an integer",
                                       flag.c_str(), value.c_str()));
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    throw xg::InputError(xg::strprintf("%s: '%s' is not a number",
                                       flag.c_str(), value.c_str()));
  }
  return v;
}

void print_help() {
  std::printf(
      "usage: xgyro_serve --gen SPEC [options]\n\n"
      "  --gen SPEC          synthetic arrival stream, e.g.\n"
      "                      \"seed=7;n=12;rate=2;tenants=2;sigs=3;prios=2;"
      "skew=1;kills=0.1\"\n"
      "  --nodes N           cluster nodes [2]\n"
      "  --ranks-per-node N  ranks per node [4]\n"
      "  --window S          batching window in virtual seconds [1.0]\n"
      "  --max-batch N       batch closes early at this size [8]\n"
      "  --no-batching       ablation: one job per request\n"
      "  --queue-depth N     admitted-but-waiting request cap [64]\n"
      "  --tenant-quota N    in-flight request cap per tenant [16]\n"
      "  --intervals N       reporting intervals per request [1]\n"
      "  --mode real|model   real data or paper-scale model mode [real]\n"
      "  --nodes-per-job N   pin jobs to N nodes (0 = cost-optimal) [0]\n"
      "  --checkpoint-dir DIR  per-job snapshots under DIR/job-<id>;\n"
      "                      enables slice preemption and kill recovery\n"
      "  --quantum N         report intervals per execution slice [1]\n"
      "  --max-recoveries N  recoveries allowed per job [3]\n"
      "  --report FILE       write the xgyro.service JSON document\n"
      "  --metrics-out FILE  write the metrics snapshot (xgyro.metrics)\n"
      "  --report-dir DIR    write per-job RunReports (job-<id>.report.json)\n"
      "  --events-out FILE   stream the xgyro.events JSONL lifecycle log;\n"
      "                      flushed per record, so an aborted run leaves a\n"
      "                      valid partial log ending in service.aborted\n"
      "  --metrics-every S   emit a monitor.snapshot record every S virtual\n"
      "                      seconds (needs --events-out) [0 = off]\n"
      "  --slo SPEC          queue-wait SLO with burn-rate alerts, e.g.\n"
      "                      \"wait=100;target=0.9;window=500;burn=2\"\n"
      "                      (needs --events-out)\n"
      "  --fast-path         price jobs from the perfmodel instead of\n"
      "                      DES-executing them; a seeded sample still runs\n"
      "                      the DES and feeds the audit divergence gate\n"
      "  --audit-frac F      fraction of jobs DES-audited under --fast-path\n"
      "                      [0.05]; fault-carrying jobs are always audited\n"
      "  --audit-seed N      seed for the per-job audit draw [1]\n"
      "  --backfill          EASY backfilling: jobs behind a blocked head\n"
      "                      start only if they cannot delay its predicted\n"
      "                      start (default: greedy first-fit)\n"
      "  --window-auto       per-signature adaptive batching window tuned\n"
      "                      from the observed arrival mix (needs windowed\n"
      "                      batching: --window > 0, --max-batch > 1)\n"
      "  --help              print this reference and exit\n"
      "\n"
      "exit status:\n"
      "  0  every admitted request completed (rejections are not errors)\n"
      "  1  usage, input, or configuration error\n"
      "  2  at least one admitted request failed (recovery exhausted),\n"
      "     or the fast-path audit gate failed\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  std::set<std::string> seen;
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      throw xg::InputError(xg::strprintf("missing value after %s", argv[i]));
    }
    return std::string(argv[i + 1]);
  };
  auto once = [&](const std::string& flag) {
    if (!seen.insert(flag).second) {
      throw xg::InputError(
          xg::strprintf("duplicate %s (give each option at most once)",
                        flag.c_str()));
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--gen") {
      once(a);
      o.gen = need_value(i++);
    } else if (a == "--nodes") {
      once(a);
      o.nodes = parse_int(a, need_value(i++));
    } else if (a == "--ranks-per-node") {
      once(a);
      o.ranks_per_node = parse_int(a, need_value(i++));
    } else if (a == "--window") {
      once(a);
      o.window_s = parse_double(a, need_value(i++));
    } else if (a == "--max-batch") {
      once(a);
      o.max_batch = parse_int(a, need_value(i++));
    } else if (a == "--no-batching") {
      once(a);
      o.batching = false;
    } else if (a == "--queue-depth") {
      once(a);
      o.queue_depth = parse_int(a, need_value(i++));
    } else if (a == "--tenant-quota") {
      once(a);
      o.tenant_quota = parse_int(a, need_value(i++));
    } else if (a == "--intervals") {
      once(a);
      o.intervals = parse_int(a, need_value(i++));
    } else if (a == "--mode") {
      once(a);
      o.mode = need_value(i++);
    } else if (a == "--nodes-per-job") {
      once(a);
      o.nodes_per_job = parse_int(a, need_value(i++));
    } else if (a == "--checkpoint-dir") {
      once(a);
      o.checkpoint_dir = need_value(i++);
    } else if (a == "--quantum") {
      once(a);
      o.quantum = parse_int(a, need_value(i++));
    } else if (a == "--max-recoveries") {
      once(a);
      o.max_recoveries = parse_int(a, need_value(i++));
    } else if (a == "--report") {
      once(a);
      o.report_out = need_value(i++);
    } else if (a == "--metrics-out") {
      once(a);
      o.metrics_out = need_value(i++);
    } else if (a == "--report-dir") {
      once(a);
      o.report_dir = need_value(i++);
    } else if (a == "--events-out") {
      once(a);
      o.events_out = need_value(i++);
    } else if (a == "--metrics-every") {
      once(a);
      o.metrics_every = parse_double(a, need_value(i++));
    } else if (a == "--slo") {
      once(a);
      o.slo = need_value(i++);
    } else if (a == "--fast-path") {
      once(a);
      o.fast_path = true;
    } else if (a == "--audit-frac") {
      once(a);
      o.audit_frac = parse_double(a, need_value(i++));
      o.audit_frac_set = true;
    } else if (a == "--audit-seed") {
      once(a);
      o.audit_seed = parse_int(a, need_value(i++));
    } else if (a == "--backfill") {
      once(a);
      o.backfill = true;
    } else if (a == "--window-auto") {
      once(a);
      o.window_auto = true;
    } else if (a == "--help" || a == "-h") {
      print_help();
      std::exit(0);
    } else {
      throw xg::InputError(
          xg::strprintf("unknown option '%s' (see --help)", a.c_str()));
    }
  }
  if (o.gen.empty()) {
    throw xg::InputError("--gen SPEC is required (see --help)");
  }
  if (o.mode != "real" && o.mode != "model") {
    throw xg::InputError(
        xg::strprintf("--mode: '%s' is not real|model", o.mode.c_str()));
  }
  if (o.nodes < 1) throw xg::InputError("--nodes must be >= 1");
  if (o.ranks_per_node < 1) {
    throw xg::InputError("--ranks-per-node must be >= 1");
  }
  if (o.metrics_every < 0.0) {
    throw xg::InputError("--metrics-every must be >= 0");
  }
  if (o.events_out.empty() && o.metrics_every > 0.0) {
    throw xg::InputError("--metrics-every requires --events-out");
  }
  if (o.events_out.empty() && !o.slo.empty()) {
    throw xg::InputError("--slo requires --events-out");
  }
  if (!o.slo.empty()) {
    (void)xg::campaign::SloSpec::parse(o.slo);  // fail fast on bad grammar
  }
  if (o.audit_frac_set && !o.fast_path) {
    throw xg::InputError("--audit-frac requires --fast-path");
  }
  if (o.audit_frac < 0.0 || o.audit_frac > 1.0) {
    throw xg::InputError("--audit-frac must be in [0,1]");
  }
  if (o.audit_seed < 0) throw xg::InputError("--audit-seed must be >= 0");
  if (o.window_auto && (!o.batching || o.window_s <= 0.0 ||
                        o.max_batch <= 1)) {
    throw xg::InputError(
        "--window-auto requires windowed batching "
        "(no --no-batching, --window > 0, --max-batch > 1)");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  // Outlives the try so a structured failure mid-run can still append the
  // service.aborted terminal record — post-mortems always have data.
  std::unique_ptr<telemetry::EventLogWriter> events;
  try {
    const Options opt = parse_args(argc, argv);

    const campaign::StreamSpec spec = campaign::StreamSpec::parse(opt.gen);
    const std::vector<campaign::Request> stream = spec.generate();

    campaign::ServiceConfig cfg;
    cfg.cluster = net::testbox(opt.nodes, opt.ranks_per_node);
    cfg.max_queue_depth = opt.queue_depth;
    cfg.tenant_quota = opt.tenant_quota;
    cfg.batching_window_s = opt.window_s;
    cfg.max_batch = opt.max_batch;
    cfg.batching = opt.batching;
    cfg.nodes_per_job = opt.nodes_per_job;
    cfg.n_report_intervals = opt.intervals;
    cfg.mode = opt.mode == "real" ? gyro::Mode::kReal : gyro::Mode::kModel;
    cfg.checkpoint_root = opt.checkpoint_dir;
    cfg.preempt_quantum = opt.quantum;
    cfg.max_recoveries = opt.max_recoveries;
    cfg.report_dir = opt.report_dir;
    cfg.fast_path = opt.fast_path;
    cfg.audit_frac = opt.audit_frac;
    cfg.audit_seed = static_cast<std::uint64_t>(opt.audit_seed);
    cfg.placement = opt.backfill ? campaign::PlacementPolicy::kBackfill
                                 : campaign::PlacementPolicy::kFirstFit;
    cfg.window_auto = opt.window_auto;
    if (!opt.events_out.empty()) {
      events = std::make_unique<telemetry::EventLogWriter>(opt.events_out);
      cfg.events = events.get();
      cfg.metrics_every_s = opt.metrics_every;
      cfg.slo = opt.slo;
    }

    campaign::CampaignService service(cfg);
    const campaign::ServiceResult res = service.run(stream);

    std::printf("%s", res.describe().c_str());
    if (!opt.report_out.empty()) {
      telemetry::write_json_file(opt.report_out, res.to_json());
      std::printf("service report written to %s\n", opt.report_out.c_str());
    }
    if (!opt.metrics_out.empty()) {
      telemetry::write_json_file(opt.metrics_out, res.metrics);
      std::printf("metrics written to %s\n", opt.metrics_out.c_str());
    }
    if (events != nullptr) {
      std::printf("event log written to %s (%ld records)\n",
                  events->path().c_str(), events->records_written());
    }
    if (res.failed > 0) {
      std::fprintf(stderr, "xgyro_serve: %d admitted request(s) failed\n",
                   res.failed);
      return 2;
    }
    if (res.fast_path.is_object()) {
      const telemetry::Json& audit = res.fast_path.at("audit");
      if (!audit.at("pass").as_bool()) {
        std::fprintf(stderr,
                     "xgyro_serve: fast-path audit gate FAILED "
                     "(worst ratio %.3f > tolerance %.3f over %lld audits)\n",
                     audit.at("worst_ratio").as_double(),
                     audit.at("tolerance").as_double(),
                     static_cast<long long>(audit.at("n").as_int()));
        return 2;
      }
    }
    return 0;
  } catch (const Error& e) {
    if (events != nullptr) events->abort(e.what());
    std::fprintf(stderr, "xgyro_serve: %s\n", e.what());
    return 1;
  }
}
