// Grouped campaign: the generalization of XGYRO to a mixed parameter scan.
//
// The paper's XGYRO requires every ensemble member to share cmat. Real
// campaigns often mix scans — here, a 2×2 grid over (collisionality,
// temperature gradient). Collisionality feeds cmat, the gradient does not,
// so the four members fall into TWO sharing groups of two. With
// SharingPolicy::kGroupByFingerprint the whole campaign still runs as one
// job: each group gets one distributed cmat copy and its own collision
// communicator.
//
//   $ ./examples/grouped_campaign
#include <cstdio>
#include <map>
#include <mutex>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/ensemble.hpp"

int main() {
  using namespace xg;

  const gyro::Input base = gyro::Input::small_test(2);
  xgyro::EnsembleInput campaign;
  for (const double nu : {0.05, 0.2}) {        // cmat-relevant axis
    for (const double alt : {2.0, 4.0}) {      // sweep-safe axis
      gyro::Input in = base;
      in.collision.nu_ee = nu;
      in.species[0].a_ln_t = alt;
      in.tag = strprintf("nu=%.2f aLT=%.1f", nu, alt);
      campaign.members.push_back(in);
    }
  }

  const auto groups = campaign.sharing_groups();
  std::printf("campaign of %d members -> %zu cmat sharing groups:\n",
              campaign.n_sims(), groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    std::printf("  group %zu:", g);
    for (const int s : groups[g]) {
      std::printf(" [%s]", campaign.members[s].tag.c_str());
    }
    std::printf("\n");
  }

  const int ranks_per_sim = 4;
  const auto decomp = gyro::Decomposition::choose(
      base, ranks_per_sim, static_cast<int>(groups[0].size()));

  struct Row {
    std::string tag;
    int group;
    gyro::Diagnostics diag;
    std::uint64_t cmat_bytes;
  };
  std::map<int, Row> rows;
  std::mutex mu;
  mpi::run_simulation(
      net::frontier_like(2), campaign.n_sims() * ranks_per_sim,
      [&](mpi::Proc& p) {
        xgyro::EnsembleDriver driver(campaign, decomp, p, gyro::Mode::kReal,
                                     xgyro::SharingPolicy::kGroupByFingerprint);
        driver.initialize();
        gyro::Diagnostics d;
        for (int i = 0; i < 2; ++i) d = driver.advance_report_interval();
        if (p.world_rank() % decomp.nranks() == 0) {
          const std::scoped_lock lock(mu);
          rows[driver.sim_index()] = {campaign.members[driver.sim_index()].tag,
                                      driver.sharing_group(), d,
                                      driver.simulation().cmat().bytes()};
        }
      });

  std::printf("\n%-18s %-6s %14s %14s %12s\n", "member", "group", "phi_rms",
              "flux proxy", "cmat/rank");
  for (const auto& [sim, row] : rows) {
    std::printf("%-18s %-6d %14.6e %14.6e %12s\n", row.tag.c_str(), row.group,
                row.diag.phi_rms, row.diag.flux_proxy,
                human_bytes(static_cast<double>(row.cmat_bytes)).c_str());
  }
  std::printf("\neach group shares one cmat copy across its members; a "
              "single-group XGYRO job would have refused this campaign.\n");
  return 0;
}
