// xgyro_report — post-process run artifacts into the paper's Fig. 2
// comparison, the way the authors reduced their published log archive
// (paper reference [5]) into the figure.
//
//   # legacy timing logs:
//   ./examples/xgyro_report artifacts/out.cgyro.timing ARTS/out.xgyro.timing 8
//
//   # structured run reports (xgyro_cli --report): same speedup table plus
//   # regression deltas between the two runs:
//   ./examples/xgyro_report --json cgyro.report.json xgyro.report.json 8
//
//   # validate a Chrome trace artifact (xgyro_cli --trace-out):
//   ./examples/xgyro_report --validate-trace trace.json
//
// Arguments (both diff modes): baseline artifact, ensemble artifact, number
// of sequential CGYRO jobs the baseline stands for (default 8). Both modes
// print the identical Fig. 2-style table for the same timing numbers.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gyro/timing_log.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: xgyro_report CGYRO_LOG XGYRO_LOG [n_sequential]\n"
               "       xgyro_report --json CGYRO_REPORT XGYRO_REPORT "
               "[n_sequential]\n"
               "       xgyro_report --validate-trace TRACE_JSON\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (!args.empty() && args[0] == "--validate-trace") {
      if (args.size() != 2) {
        usage();
        return 1;
      }
      const auto check =
          telemetry::check_chrome_trace(telemetry::load_json_file(args[1]));
      std::printf("trace ok: %d track(s), %d complete event(s), %zu rank(s) "
                  "with events\n",
                  check.n_tracks, check.n_complete_events,
                  check.ranks_with_tracks.size());
      return 0;
    }

    const bool json_mode = !args.empty() && args[0] == "--json";
    if (json_mode) args.erase(args.begin());
    if (args.size() < 2) {
      usage();
      return 1;
    }
    const int k = args.size() > 2 ? std::atoi(args[2].c_str()) : 8;

    if (json_mode) {
      const auto a = telemetry::load_run_report(args[0]);
      const auto b = telemetry::load_run_report(args[1]);
      std::printf("%s", telemetry::format_speedup_table(
                            a.phases, a.makespan_s, b.phases, b.makespan_s, k)
                            .c_str());
      std::printf("\n%s", telemetry::format_regressions(a, b).c_str());
      return 0;
    }

    double cg_makespan = 0, xg_makespan = 0;
    const auto cg = gyro::load_timing_log(args[0], &cg_makespan);
    const auto xg = gyro::load_timing_log(args[1], &xg_makespan);
    std::printf("%s", telemetry::format_speedup_table(cg, cg_makespan, xg,
                                                      xg_makespan, k)
                          .c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_report: %s\n", e.what());
    return 1;
  }
}
