// xgyro_report — post-process run artifacts into the paper's Fig. 2
// comparison, the way the authors reduced their published log archive
// (paper reference [5]) into the figure.
//
//   # legacy timing logs:
//   ./examples/xgyro_report artifacts/out.cgyro.timing ARTS/out.xgyro.timing 8
//
//   # structured run reports (xgyro_cli --report): same speedup table plus
//   # regression deltas between the two runs:
//   ./examples/xgyro_report --json cgyro.report.json xgyro.report.json 8
//
//   # validate a Chrome trace artifact (xgyro_cli --trace-out):
//   ./examples/xgyro_report --validate-trace trace.json
//
//   # re-render the analysis section of a report (xgyro_cli --analyze
//   # --report ...): critical path, wait/work, perf-model divergence:
//   ./examples/xgyro_report --analysis run.report.json
//
// Arguments (both diff modes): baseline artifact, ensemble artifact, number
// of sequential CGYRO jobs the baseline stands for (default 8). Both modes
// print the identical Fig. 2-style table for the same timing numbers.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/divergence.hpp"
#include "gyro/timing_log.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: xgyro_report CGYRO_LOG XGYRO_LOG [n_sequential]\n"
               "       xgyro_report --json CGYRO_REPORT XGYRO_REPORT "
               "[n_sequential]\n"
               "       xgyro_report --validate-trace TRACE_JSON\n"
               "       xgyro_report --analysis REPORT_JSON\n");
}

/// Print the embedded analysis section of a run report written by
/// `xgyro_cli --analyze [--perfmodel-check] --report FILE`.
int print_analysis(const std::string& path) {
  using namespace xg;
  const telemetry::RunReport report = telemetry::load_run_report(path);
  if (report.analysis.is_null()) {
    throw InputError(
        "report has no analysis section (re-run xgyro_cli with --analyze)");
  }
  std::printf("analysis for run '%s' (%d rank(s), %d member(s), makespan "
              "%.6f s)\n\n",
              report.label.c_str(), report.nranks, report.n_members,
              report.makespan_s);
  if (const auto* cp = report.analysis.find("critical_path"); cp != nullptr) {
    const double makespan = cp->at("makespan_s").as_double();
    const double covered = cp->at("covered_s").as_double();
    std::printf("critical path: %.6f s of %.6f s makespan (%.2f%% covered), "
                "ends on rank %lld\n",
                covered, makespan,
                makespan > 0.0 ? 100.0 * covered / makespan : 100.0,
                static_cast<long long>(cp->at("end_rank").as_int()));
    std::printf("  %-10s %14s %14s %14s\n", "phase", "work_s", "transfer_s",
                "total_s");
    for (const auto& [phase, share] : cp->at("by_phase").items()) {
      std::printf("  %-10s %14.6f %14.6f %14.6f\n", phase.c_str(),
                  share.at("work_s").as_double(),
                  share.at("transfer_s").as_double(),
                  share.at("total_s").as_double());
    }
  }
  if (const auto* ww = report.analysis.find("waitwork"); ww != nullptr) {
    std::printf("\nwait/work: %lld collective instance(s), wait %.6f "
                "rank-s, transfer %.6f s, max skew %.9f s\n",
                static_cast<long long>(ww->at("n_instances").as_int()),
                ww->at("total_wait_s").as_double(),
                ww->at("total_transfer_s").as_double(),
                ww->at("max_skew_s").as_double());
    for (const auto& [phase, agg] : ww->at("by_phase").items()) {
      std::printf("  %-10s %6lld collectives  wait %.6f  transfer %.6f\n",
                  phase.c_str(),
                  static_cast<long long>(agg.at("instances").as_int()),
                  agg.at("wait_s").as_double(),
                  agg.at("transfer_s").as_double());
    }
  }
  if (const auto* div = report.analysis.find("divergence"); div != nullptr) {
    std::printf("\n%s", analysis::format_divergence(
                            analysis::divergence_from_json(*div))
                            .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (!args.empty() && args[0] == "--validate-trace") {
      if (args.size() != 2) {
        usage();
        return 1;
      }
      const auto check =
          telemetry::check_chrome_trace(telemetry::load_json_file(args[1]));
      std::printf("trace ok: %d track(s), %d complete event(s), %d collective "
                  "instance(s), %zu rank(s) with events\n",
                  check.n_tracks, check.n_complete_events,
                  check.n_collective_instances,
                  check.ranks_with_tracks.size());
      return 0;
    }

    if (!args.empty() && args[0] == "--analysis") {
      if (args.size() != 2) {
        usage();
        return 1;
      }
      return print_analysis(args[1]);
    }

    const bool json_mode = !args.empty() && args[0] == "--json";
    if (json_mode) args.erase(args.begin());
    if (args.size() < 2) {
      usage();
      return 1;
    }
    const int k = args.size() > 2 ? std::atoi(args[2].c_str()) : 8;

    if (json_mode) {
      const auto a = telemetry::load_run_report(args[0]);
      const auto b = telemetry::load_run_report(args[1]);
      std::printf("%s", telemetry::format_speedup_table(
                            a.phases, a.makespan_s, b.phases, b.makespan_s, k)
                            .c_str());
      std::printf("\n%s", telemetry::format_regressions(a, b).c_str());
      return 0;
    }

    double cg_makespan = 0, xg_makespan = 0;
    const auto cg = gyro::load_timing_log(args[0], &cg_makespan);
    const auto xg = gyro::load_timing_log(args[1], &xg_makespan);
    std::printf("%s", telemetry::format_speedup_table(cg, cg_makespan, xg,
                                                      xg_makespan, k)
                          .c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_report: %s\n", e.what());
    return 1;
  }
}
