// xgyro_report — post-process timing-log artifacts into the paper's Fig. 2
// comparison, the way the authors reduced their published log archive
// (paper reference [5]) into the figure.
//
//   # generate logs, then reduce them:
//   ./bench/fig2_breakdown --steps 10 --artifacts artifacts
//   ./examples/xgyro_report artifacts/out.cgyro.timing ARTS/out.xgyro.timing 8
//
// Arguments: CGYRO log, XGYRO log, number of sequential CGYRO jobs the
// single-job log stands for (default 8).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "gyro/timing_log.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: xgyro_report CGYRO_LOG XGYRO_LOG [n_sequential]\n");
    return 1;
  }
  const int k = argc > 3 ? std::atoi(argv[3]) : 8;
  try {
    double cg_makespan = 0, xg_makespan = 0;
    const auto cg = gyro::load_timing_log(argv[1], &cg_makespan);
    const auto xg = gyro::load_timing_log(argv[2], &xg_makespan);

    std::map<std::string, gyro::TimingRow> xg_by_phase;
    for (const auto& row : xg) xg_by_phase[row.phase] = row;

    std::printf("Fig. 2-style reduction (%d sequential CGYRO jobs vs one "
                "XGYRO ensemble)\n\n",
                k);
    std::printf("%-12s %14s %14s %10s\n", "phase", "CGYRO sum [s]",
                "XGYRO [s]", "ratio");
    double cg_total = 0, xg_total = 0;
    for (const auto& row : cg) {
      const auto it = xg_by_phase.find(row.phase);
      const double cg_t = k * row.total_s;
      const double xg_t = it != xg_by_phase.end() ? it->second.total_s : 0.0;
      cg_total += cg_t;
      xg_total += xg_t;
      std::printf("%-12s %14.3f %14.3f %9.2fx\n", row.phase.c_str(), cg_t,
                  xg_t, xg_t > 0 ? cg_t / xg_t : 0.0);
    }
    std::printf("%-12s %14.3f %14.3f %9.2fx\n", "TOTAL", cg_total, xg_total,
                xg_total > 0 ? cg_total / xg_total : 0.0);
    std::printf("\nmakespans: CGYRO job %.3f s (x%d sequential), XGYRO "
                "ensemble %.3f s\n",
                cg_makespan, k, xg_makespan);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_report: %s\n", e.what());
    return 1;
  }
}
