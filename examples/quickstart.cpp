// Quickstart: run one small CGYRO-skeleton simulation on a simulated
// 4-rank machine, with real physics data, and print diagnostics plus the
// per-phase timing table.
//
//   $ ./examples/quickstart
//
// What happens:
//  1. A Frontier-like virtual machine is described (simnet).
//  2. Four rank threads are spawned (simmpi); each builds its slice of the
//     velocity/configuration grid, the collisional constant tensor (cmat),
//     and a random initial perturbation.
//  3. The solver advances two reporting intervals: RK4 streaming with
//     AllReduce field solves, then the implicit collision step through the
//     str↔coll AllToAll transpose.
//  4. Diagnostics and the CGYRO-style timing breakdown are printed.
#include <cstdio>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

int main() {
  using namespace xg;

  // A small but non-trivial case: 2 species (ions + light electrons),
  // 4x8 velocity grid, 8x4 configuration grid, 4 toroidal modes.
  gyro::Input input = gyro::Input::small_test(2);
  input.n_radial = 8;
  input.n_steps_per_report = 10;
  input.tag = "quickstart";

  const int nranks = 4;
  const auto machine = net::frontier_like(1);
  const auto decomp = gyro::Decomposition::choose(input, nranks);
  std::printf("quickstart: %d ranks on %s (pv=%d, pt=%d)\n", nranks,
              machine.name.c_str(), decomp.pv, decomp.pt);

  gyro::Diagnostics diag;
  std::uint64_t cmat_bytes = 0;
  const auto result = mpi::run_simulation(machine, nranks, [&](mpi::Proc& p) {
    auto layout = gyro::make_cgyro_layout(p.world(), decomp);
    gyro::Simulation sim(input, decomp, std::move(layout), p, gyro::Mode::kReal);
    sim.initialize();
    for (int i = 0; i < 2; ++i) diag = sim.advance_report_interval();
    if (p.world_rank() == 0) cmat_bytes = sim.cmat().bytes();
  });

  std::printf("\nafter %d steps (t = %.2f):\n", diag.steps, diag.time);
  std::printf("  phi_rms     = %.6e\n", diag.phi_rms);
  std::printf("  flux proxy  = %.6e\n", diag.flux_proxy);
  std::printf("  cmat slice  = %s per rank\n\n",
              human_bytes(static_cast<double>(cmat_bytes)).c_str());

  std::printf("per-phase timing (virtual seconds on the simulated machine):\n%s\n",
              gyro::format_timing(result, xgyro::solver_phases()).c_str());

  std::printf("memory inventory per rank:\n%s",
              gyro::Simulation::memory_inventory(input, decomp, 1).table().c_str());
  return 0;
}
