// Campaign demo: plan and execute a full nl03c-scale study — the paper's
// workflow end-to-end. Eight gradient-scan members on 32 Frontier-like
// nodes: the planner discovers that batching all eight into one XGYRO job
// (one shared cmat) is both the only memory-feasible batched option and the
// cheapest, then the simulated machine executes the plan.
//
//   $ ./examples/campaign_demo [--steps N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.hpp"
#include "perfmodel/perfmodel.hpp"
#include "util/format.hpp"
#include "xgyro/driver.hpp"

int main(int argc, char** argv) {
  using namespace xg;
  int steps = 5;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--steps") steps = std::atoi(argv[i + 1]);
  }

  campaign::CampaignSpec spec;
  gyro::Input base = gyro::Input::nl03c_like();
  base.n_steps_per_report = steps;
  spec.members = xgyro::EnsembleInput::sweep(
      base, 8, [](gyro::Input& in, int i) {
        in.species[0].a_ln_t = 2.0 + 0.25 * i;
        in.tag = strprintf("aLT=%.2f", in.species[0].a_ln_t);
      });
  spec.machine = perfmodel::nl03c_machine(32);

  std::printf("study: 8 nl03c-like members, %d nodes, %d steps/report\n\n",
              spec.machine.n_nodes, steps);

  const auto plan = campaign::plan_campaign(spec);
  std::printf("%s\n", plan.describe().c_str());

  std::printf("executing on the simulated machine (model mode)...\n");
  const auto result = campaign::run_campaign(spec, plan, gyro::Mode::kModel);
  std::printf("measured campaign cost: %.3f s per reporting step "
              "(predicted %.3f s)\n\n",
              result.total_report_seconds(), plan.predicted_total_seconds);

  // What would sequential CGYRO have cost?
  campaign::CampaignPlan sequential;
  for (int m = 0; m < spec.members.n_sims(); ++m) {
    campaign::JobPlan job;
    job.member_indices = {m};
    job.ranks_per_sim = spec.machine.total_ranks();
    job.decomp = gyro::Decomposition::choose(base, job.ranks_per_sim, 1);
    sequential.jobs.push_back(job);
  }
  const auto seq = campaign::run_campaign(spec, sequential, gyro::Mode::kModel);
  std::printf("sequential CGYRO baseline: %.3f s per reporting step -> "
              "campaign speedup %.2fx (paper: 1.5x)\n",
              seq.total_report_seconds(),
              seq.total_report_seconds() / result.total_report_seconds());
  return 0;
}
