// Physics example: linear growth-rate scan over the binormal wavenumber.
//
// For each toroidal mode ky we run a short linear simulation and measure
// the growth rate gamma = d ln(phi_rms)/dt between reporting steps — the
// everyday workflow CGYRO users run before any nonlinear study (and a
// typical "many small runs" workload XGYRO batches).
//
//   $ ./examples/linear_growth
#include <cmath>
#include <cstdio>
#include <vector>

#include "gyro/simulation.hpp"
#include "simnet/machine.hpp"
#include "xgyro/driver.hpp"

int main() {
  using namespace xg;

  gyro::Input base = gyro::Input::small_test(2);
  base.n_radial = 8;
  base.n_toroidal = 8;   // resolve several ky modes
  base.n_steps_per_report = 20;
  base.collision.nu_ee = 0.02;
  base.species[0].a_ln_t = 3.0;

  const int nranks = 4;
  const auto decomp = gyro::Decomposition::choose(base, nranks);
  const auto machine = net::frontier_like(1);

  std::printf("linear growth-rate scan (drive a_LT=%.1f, nu_ee=%.3f)\n\n",
              base.species[0].a_ln_t, base.collision.nu_ee);
  std::printf("%-10s %14s %14s %12s\n", "scan", "phi_rms(t1)", "phi_rms(t2)",
              "gamma");

  // Scan the drive strength; growth rates must increase with the drive.
  std::vector<double> gammas;
  for (const double alt : {0.0, 1.5, 3.0, 4.5}) {
    gyro::Input in = base;
    in.species[0].a_ln_t = alt;
    double rms1 = 0, rms2 = 0, dt_report = 0;
    mpi::run_simulation(machine, nranks, [&](mpi::Proc& p) {
      auto layout = gyro::make_cgyro_layout(p.world(), decomp);
      gyro::Simulation sim(in, decomp, std::move(layout), p, gyro::Mode::kReal);
      sim.initialize();
      const auto d1 = sim.advance_report_interval();
      const auto d2 = sim.advance_report_interval();
      if (p.world_rank() == 0) {
        rms1 = d1.phi_rms;
        rms2 = d2.phi_rms;
        dt_report = (d2.time - d1.time);
      }
    });
    const double gamma = std::log(rms2 / rms1) / dt_report;
    gammas.push_back(gamma);
    std::printf("a_LT=%-5.1f %14.6e %14.6e %12.4f\n", alt, rms1, rms2, gamma);
  }

  const bool monotone = gammas.back() > gammas.front();
  std::printf("\ngrowth increases with temperature-gradient drive: %s\n",
              monotone ? "yes (ITG-like behaviour)" : "NO (unexpected)");
  return monotone ? 0 : 1;
}
