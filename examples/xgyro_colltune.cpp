// xgyro_colltune — DES-driven autotuner for the collective decision table.
//
// For every (collective kind, payload bucket, participant bucket) cell it
// runs each selectable algorithm through the discrete-event simulator on a
// Frontier-like machine sized to the participant count, takes the argmin
// makespan, and emits the winners as an xgyro.coll_table JSON document that
// `xgyro_cli --coll-table` (and RuntimeOptions::coll_selector) consume:
//
//   ./examples/xgyro_colltune --out my_table.json
//   ./examples/xgyro_cli --ensemble ... --coll-table my_table.json
//
// --smoke shrinks the sweep to a few cells and additionally verifies that
// the emitted document round-trips: written to disk, loaded back through
// telemetry::load_coll_table, and queried at every swept cell, the selector
// must return exactly the algorithm the sweep measured as the winner.
//
// Exit status: 0 success; 1 usage error or failed smoke validation.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "simmpi/coll.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simnet/machine.hpp"
#include "telemetry/colltable.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace {

using xg::mpi::CollAlg;
using Kind = xg::mpi::TraceEvent::Kind;

struct Options {
  std::string out = "coll_table.json";
  bool smoke = false;
};

void print_help() {
  std::printf(
      "usage: xgyro_colltune [options]\n\n"
      "  --out FILE   write the tuned decision table here "
      "[coll_table.json]\n"
      "  --smoke      tiny sweep; verify the emitted table round-trips\n"
      "               through the selector, then delete it\n"
      "  --help       print this reference and exit\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      if (i + 1 >= argc) throw xg::InputError("missing value after --out");
      o.out = argv[++i];
    } else if (a == "--smoke") {
      o.smoke = true;
    } else if (a == "--help" || a == "-h") {
      print_help();
      std::exit(0);
    } else {
      throw xg::InputError(xg::strprintf("unknown option '%s'", a.c_str()));
    }
  }
  return o;
}

/// DES makespan of one collective instance run with `alg`.
double time_alg(Kind kind, CollAlg alg, int participants,
                std::uint64_t bytes) {
  const auto spec =
      xg::net::frontier_like((participants + 7) / 8);  // 8 ranks/node
  const auto res = xg::mpi::run_simulation(
      spec, participants, [&](xg::mpi::Proc& proc) {
        switch (kind) {
          case Kind::kAllReduce:
            proc.world().allreduce_virtual(bytes, alg);
            break;
          case Kind::kReduce:
            proc.world().reduce_virtual(bytes, 0, alg);
            break;
          case Kind::kBcast:
            proc.world().bcast_virtual(bytes, 0, alg);
            break;
          case Kind::kAllGather:
            proc.world().allgather_virtual(bytes, alg);
            break;
          case Kind::kAllToAll:
            proc.world().alltoall_virtual(bytes, alg);
            break;
          default:
            throw xg::InputError("colltune: unsupported kind");
        }
      });
  return res.makespan_s;
}

struct Cell {
  Kind kind{};
  std::uint64_t bytes = 0;
  int participants = 0;
  bool spans = false;
  CollAlg winner = CollAlg::kAuto;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xg;
  try {
    const Options opt = parse_args(argc, argv);

    const std::vector<Kind> kinds = {Kind::kAllReduce, Kind::kReduce,
                                     Kind::kBcast, Kind::kAllGather,
                                     Kind::kAllToAll};
    std::vector<std::uint64_t> bytes_buckets = {256, 4096, 65536, 1048576};
    std::vector<int> participant_buckets = {2, 8, 64, 256};
    std::vector<Kind> sweep_kinds = kinds;
    if (opt.smoke) {
      sweep_kinds = {Kind::kAllReduce, Kind::kAllToAll};
      bytes_buckets = {1024, 65536};
      participant_buckets = {4, 16};
    }
    const int ranks_per_node = net::frontier_like(1).ranks_per_node;

    std::vector<Cell> cells;
    for (const Kind kind : sweep_kinds) {
      for (const std::uint64_t bytes : bytes_buckets) {
        for (const int p : participant_buckets) {
          Cell cell;
          cell.kind = kind;
          cell.bytes = bytes;
          cell.participants = p;
          cell.spans = p > ranks_per_node;
          double best = 0.0;
          for (const CollAlg alg : mpi::selectable_algs(kind)) {
            const double t = time_alg(kind, alg, p, bytes);
            if (cell.winner == CollAlg::kAuto || t < best) {
              cell.winner = alg;
              best = t;
            }
          }
          std::printf("%-9s %8llu B  p=%-4d %-10s -> %-18s %10.3f us\n",
                      mpi::coll_kind_key(kind),
                      static_cast<unsigned long long>(bytes), p,
                      cell.spans ? "internode" : "intra-node",
                      mpi::coll_alg_name(cell.winner), best * 1e6);
          cells.push_back(cell);
        }
      }
    }

    // One rule per cell, ordered (kind, bytes asc, participants asc) so the
    // selector's first-match scan resolves each swept cell to its own row.
    std::vector<mpi::CollRule> rules;
    rules.reserve(cells.size());
    for (const Cell& cell : cells) {
      mpi::CollRule rule;
      rule.kind = cell.kind;
      rule.max_bytes = cell.bytes;
      rule.max_participants = cell.participants;
      rule.spans_nodes = cell.spans ? 1 : 0;
      rule.alg = cell.winner;
      rules.push_back(rule);
    }
    const mpi::CollSelector tuned(
        std::move(rules),
        strprintf("colltune%s sweep: %zu cells", opt.smoke ? " --smoke" : "",
                  cells.size()));
    telemetry::write_coll_table(opt.out, tuned);
    std::printf("decision table (%zu rules) written to %s\n",
                tuned.rules().size(), opt.out.c_str());

    if (opt.smoke) {
      // Round-trip gate: the table on disk, loaded back, must resolve every
      // swept cell to the measured winner.
      const auto loaded = telemetry::load_coll_table(opt.out);
      int mismatches = 0;
      for (const Cell& cell : cells) {
        const CollAlg got = loaded->choose(cell.kind, cell.bytes,
                                           cell.participants, cell.spans);
        if (got != cell.winner) {
          std::fprintf(stderr,
                       "colltune smoke: %s %llu B p=%d: table resolves '%s', "
                       "sweep measured '%s'\n",
                       mpi::coll_kind_key(cell.kind),
                       static_cast<unsigned long long>(cell.bytes),
                       cell.participants, mpi::coll_alg_name(got),
                       mpi::coll_alg_name(cell.winner));
          ++mismatches;
        }
      }
      std::filesystem::remove(opt.out);
      if (mismatches != 0) {
        throw Error(strprintf("%d cell(s) failed the round-trip check",
                              mismatches));
      }
      std::printf("colltune smoke: %zu cells round-tripped through the "
                  "selector\n",
                  cells.size());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "xgyro_colltune: %s\n", e.what());
    return 1;
  }
}
