#!/usr/bin/env bash
# ci.sh — the full local gate, in the order a reviewer would run it:
#
#   1. default preset build + complete ctest tier-1 suite
#   2. address+UB-sanitized preset build (compile-time gate)
#   3. end-to-end determinism check (identical-seed runs bitwise equal)
#   4. telemetry artifact smoke (trace/report/metrics export + validation)
#   5. docs consistency (USER_GUIDE flags vs --help both ways; every guide
#      command runs; documented CLI error paths behave as documented)
#   6. benchmark baseline smoke (every BENCH_*.json validates and detects
#      an injected +10% slowdown)
#   7. collective autotuner smoke (xgyro_colltune's emitted decision table
#      round-trips: write -> load -> selector resolves every swept cell to
#      the measured winner)
#
# Steps 3–7 are also registered with ctest (check_determinism_script,
# trace_export_smoke, docs_consistency_check, bench_baseline_smoke,
# colltune_smoke); they rerun here standalone so a failure prints its own
# transcript even when ctest is skipped.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/7] default build + ctest ==="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default

echo "=== [2/7] sanitized build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j "$JOBS"

echo "=== [3/7] determinism check ==="
bash scripts/check_determinism.sh build

echo "=== [4/7] telemetry trace-export smoke ==="
bash scripts/trace_smoke.sh build

echo "=== [5/7] docs consistency check ==="
bash scripts/docs_check.sh build

echo "=== [6/7] bench baseline smoke ==="
./build/examples/xgyro_bench_check --smoke .

echo "=== [7/7] collective autotuner smoke ==="
./build/examples/xgyro_colltune --smoke --out build/colltune_smoke.coll_table.json

echo "ci.sh: all gates passed"
