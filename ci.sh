#!/usr/bin/env bash
# ci.sh — the full local gate, in the order a reviewer would run it:
#
#   1. default preset build + complete ctest tier-1 suite
#   2. address+UB-sanitized preset build (compile-time gate)
#   3. end-to-end determinism check (identical-seed runs bitwise equal)
#   4. telemetry artifact smoke (trace/report/metrics export + validation)
#   5. docs consistency (USER_GUIDE flags vs --help both ways; every guide
#      command runs; documented CLI error paths behave as documented)
#   6. benchmark baseline smoke (every BENCH_*.json validates and detects
#      an injected +10% slowdown)
#   7. collective autotuner smoke (xgyro_colltune's emitted decision table
#      round-trips: write -> load -> selector resolves every swept cell to
#      the measured winner)
#   8. campaign service smoke (a short arrival stream through xgyro_serve:
#      admission, batching, placement, and the exit-0 convention — then the
#      same stream down the production path: perfmodel fast path with a
#      full DES audit, EASY backfilling, and adaptive windows)
#   9. service observability smoke (xgyro_serve with the streamed event
#      log, snapshots and an SLO, replayed through xgyro_servemon:
#      validation, sketch-vs-exact cross-check, trace export, event-log
#      determinism, and the aborted-run partial-log guarantee)
#
# Steps 3–9 are also registered with ctest (check_determinism_script,
# trace_export_smoke, docs_consistency_check, bench_baseline_smoke,
# colltune_smoke, service_smoke, servemon_smoke); they rerun here
# standalone so a failure prints its own transcript even when ctest is
# skipped.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== [1/9] default build + ctest ==="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default

echo "=== [2/9] sanitized build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j "$JOBS"

echo "=== [3/9] determinism check ==="
bash scripts/check_determinism.sh build

echo "=== [4/9] telemetry trace-export smoke ==="
bash scripts/trace_smoke.sh build

echo "=== [5/9] docs consistency check ==="
bash scripts/docs_check.sh build

echo "=== [6/9] bench baseline smoke ==="
./build/examples/xgyro_bench_check --smoke .

echo "=== [7/9] collective autotuner smoke ==="
./build/examples/xgyro_colltune --smoke --out build/colltune_smoke.coll_table.json

echo "=== [8/9] campaign service smoke ==="
./build/examples/xgyro_serve --gen "seed=3;n=6;rate=4;tenants=2;sigs=2" \
  --nodes 2 --ranks-per-node 4 --window 0.5
# The production-stream path: modeled fast path with every job audited
# (audit-frac 1 keeps the smoke bit-identical to the DES while still
# exercising the divergence gate), backfilling placement, and adaptive
# windows. Exit 2 would flag a tripped audit gate.
./build/examples/xgyro_serve --gen "seed=3;n=6;rate=4;tenants=2;sigs=2" \
  --nodes 2 --ranks-per-node 4 --window 0.5 \
  --fast-path --audit-frac 1.0 --backfill --window-auto

echo "=== [9/9] service observability smoke ==="
bash scripts/servemon_smoke.sh build/examples

echo "ci.sh: all gates passed"
